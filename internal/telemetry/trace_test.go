package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestTracerConfigValidation(t *testing.T) {
	if _, err := NewTracer(TracerConfig{SampleRate: 1.5}); err == nil {
		t.Fatal("sample rate > 1 accepted")
	}
	if _, err := NewTracer(TracerConfig{SampleRate: -0.1}); err == nil {
		t.Fatal("negative sample rate accepted")
	}
	if _, err := NewTracer(TracerConfig{Capacity: -3}); err == nil {
		t.Fatal("negative capacity accepted")
	}
	tr, err := NewTracer(TracerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Sampled(123) {
		t.Fatal("default tracer must sample everything")
	}
}

// TestSamplingDeterminism: a fixed (seed, rate) samples exactly the same
// event set every run, a different seed samples a different set, and the
// realised rate is close to the configured one.
func TestSamplingDeterminism(t *testing.T) {
	const n = 20000
	const rate = 0.1
	pick := func(seed int64) []int64 {
		tr, err := NewTracer(TracerConfig{SampleRate: rate, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var out []int64
		for seq := int64(0); seq < n; seq++ {
			if tr.Sampled(seq) {
				out = append(out, seq)
			}
		}
		return out
	}
	a, b := pick(42), pick(42)
	if len(a) != len(b) {
		t.Fatalf("same seed sampled %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if got := float64(len(a)) / n; math.Abs(got-rate) > 0.02 {
		t.Fatalf("realised rate %v, configured %v", got, rate)
	}
	c := pick(43)
	same := 0
	for i := 0; i < len(a) && i < len(c); i++ {
		if a[i] == c[i] {
			same++
		}
	}
	if len(c) > 0 && same == len(a) {
		t.Fatal("different seeds sampled identical sets")
	}
}

func TestRingEviction(t *testing.T) {
	tr, err := NewTracer(TracerConfig{Capacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(0); seq < 5; seq++ {
		tr.Begin(seq)
	}
	got := tr.Traces()
	if len(got) != 3 {
		t.Fatalf("ring held %d traces, want 3", len(got))
	}
	for i, want := range []int64{2, 3, 4} {
		if got[i].Seq != want {
			t.Fatalf("ring[%d].Seq = %d, want %d (oldest first)", i, got[i].Seq, want)
		}
	}
	if tr.Count() != 5 {
		t.Fatalf("Count = %d, want 5", tr.Count())
	}
}

func TestTraceJSONL(t *testing.T) {
	tr, err := NewTracer(TracerConfig{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	et := tr.Begin(7)
	if et == nil {
		t.Fatal("default tracer returned nil trace")
	}
	st := time.Now()
	et.Add("match", st, 42*time.Microsecond, -1, -1, 0, "")
	et.Add("deliver", st, time.Millisecond, 12, 3, 2, "retry")

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var rec struct {
			Seq   int64  `json:"seq"`
			Spans []Span `json:"spans"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		if rec.Seq != 7 || len(rec.Spans) != 2 {
			t.Fatalf("unexpected record: %+v", rec)
		}
		if rec.Spans[1].Name != "deliver" || rec.Spans[1].Node != 12 || rec.Spans[1].Group != 3 ||
			rec.Spans[1].Attempt != 2 || rec.Spans[1].Note != "retry" {
			t.Fatalf("span fields lost: %+v", rec.Spans[1])
		}
	}
	if lines != 1 {
		t.Fatalf("JSONL had %d lines, want 1", lines)
	}
}

func TestUnsampledBeginIsNil(t *testing.T) {
	tr, err := NewTracer(TracerConfig{SampleRate: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(0); seq < 100; seq++ {
		et := tr.Begin(seq)
		if (et != nil) != tr.Sampled(seq) {
			t.Fatalf("Begin/Sampled disagree at seq %d", seq)
		}
		// nil traces must be safe to use.
		et.Add("x", time.Now(), 0, 0, 0, 0, "")
	}
}
