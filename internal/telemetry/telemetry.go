// Package telemetry is the observability layer of the delivery fabric:
// lock-free counters, gauges and fixed-bucket histograms organised into
// named scopes, an optional ring-buffer trace recorder for per-event
// lifecycle spans, and exporters (expvar-style JSON, Prometheus text
// exposition, an opt-in HTTP server with pprof).
//
// Design constraints, in order:
//
//   - zero external dependencies — everything is stdlib;
//   - negligible hot-path cost — recording a metric is one atomic add (plus
//     a binary search over a handful of bucket bounds for histograms), and
//     every instrument is nil-safe so un-instrumented components pay a
//     single predictable branch;
//   - snapshot-on-read — readers never block writers; a snapshot is a
//     consistent-enough copy assembled from atomic loads, and successive
//     snapshots of any counter are monotone non-decreasing.
//
// Instruments are interned per scope: asking a Scope for the same name
// twice returns the same instrument, so components cache the pointer once
// at construction and the map lookup never appears on the hot path.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotone non-decreasing integer. The zero value is unusable;
// obtain counters from a Scope. All methods are safe for concurrent use and
// nil-safe (a nil counter ignores writes and reads as zero).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n (n must be ≥ 0 to preserve monotonicity;
// negative deltas are ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer level (queue depth, live groups). Safe
// for concurrent use and nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the level by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Scope is one component's namespace inside a Registry (broker, matching,
// core, sim, ...). Instruments are interned by name.
type Scope struct {
	name string

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Name returns the scope's namespace.
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil scope, so callers can hold optional scopes without branching.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given buckets
// on first use. A later call with different buckets returns the existing
// histogram unchanged (first writer wins).
func (s *Scope) Histogram(name string, b Buckets) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hists[name]
	if !ok {
		h = newHistogram(b)
		s.hists[name] = h
	}
	return h
}

// Registry is a set of named scopes. The zero value is not usable; create
// with NewRegistry. A nil registry hands out nil scopes, which hand out nil
// instruments — fully instrumented code runs unchanged with telemetry off.
type Registry struct {
	mu     sync.Mutex
	scopes map[string]*Scope
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{scopes: make(map[string]*Scope)}
}

// Scope returns the named scope, creating it on first use. Nil-safe.
func (r *Registry) Scope(name string) *Scope {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.scopes[name]
	if !ok {
		s = &Scope{
			name:     name,
			counters: make(map[string]*Counter),
			gauges:   make(map[string]*Gauge),
			hists:    make(map[string]*Histogram),
		}
		r.scopes[name] = s
	}
	return s
}

// ScopeSnapshot is the read-side view of one scope.
type ScopeSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot is the read-side view of a whole registry, keyed by scope name.
type Snapshot map[string]ScopeSnapshot

// Snapshot captures every instrument's current value. Each value is an
// atomic load, so individual counters are monotone across successive
// snapshots; the snapshot as a whole is taken while writers keep running
// and does not freeze cross-metric relationships.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	scopes := make([]*Scope, 0, len(r.scopes))
	for _, s := range r.scopes {
		scopes = append(scopes, s)
	}
	r.mu.Unlock()
	for _, s := range scopes {
		s.mu.Lock()
		ss := ScopeSnapshot{}
		if len(s.counters) > 0 {
			ss.Counters = make(map[string]int64, len(s.counters))
			for name, c := range s.counters {
				ss.Counters[name] = c.Value()
			}
		}
		if len(s.gauges) > 0 {
			ss.Gauges = make(map[string]int64, len(s.gauges))
			for name, g := range s.gauges {
				ss.Gauges[name] = g.Value()
			}
		}
		if len(s.hists) > 0 {
			ss.Histograms = make(map[string]HistogramSnapshot, len(s.hists))
			for name, h := range s.hists {
				ss.Histograms[name] = h.Snapshot()
			}
		}
		name := s.name
		s.mu.Unlock()
		out[name] = ss
	}
	return out
}

// sortedKeys returns map keys in lexical order, for deterministic exports.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Timer measures one operation's wall time into a histogram:
//
//	defer scope.Histogram("refresh_ns", LatencyBuckets()).Start()()
type stopFunc func() time.Duration

// Start begins timing; the returned func records the elapsed nanoseconds
// into the histogram and returns the duration. Nil-safe: on a nil histogram
// nothing is recorded (the duration is still measured and returned).
func (h *Histogram) Start() stopFunc {
	t0 := time.Now()
	return func() time.Duration {
		d := time.Since(t0)
		h.ObserveDuration(d)
		return d
	}
}
