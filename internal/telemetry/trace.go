package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Span is one step of a publication's lifecycle. Times are offsets from the
// event's trace start, so traces are comparable across runs and serialise
// without wall-clock noise.
type Span struct {
	// Name is the lifecycle stage: "match", "decide", "enqueue", "attempt",
	// "retry", "degrade", "deliver", "dedup", "offline", "abandon".
	Name string `json:"name"`
	// Start and Dur locate the span relative to the trace's first span.
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	// Node is the destination node, -1 when the span is not per-destination.
	Node int64 `json:"node"`
	// Group is the routed multicast group, -1 for unicast/none.
	Group int `json:"group"`
	// Attempt is the delivery attempt number for attempt-level spans.
	Attempt int `json:"attempt,omitempty"`
	// Note carries free-form detail ("budget-exhausted", "partitioned").
	Note string `json:"note,omitempty"`
}

// EventTrace accumulates the spans of one sampled publication. Spans may be
// added concurrently (the broker's fan-out workers and consumers all touch
// the same event).
type EventTrace struct {
	Seq int64 `json:"seq"`

	mu    sync.Mutex
	t0    time.Time
	spans []Span
}

// Add appends a completed span whose wall-clock start was st.
func (et *EventTrace) Add(name string, st time.Time, dur time.Duration, node int64, group, attempt int, note string) {
	if et == nil {
		return
	}
	et.mu.Lock()
	et.spans = append(et.spans, Span{
		Name:    name,
		Start:   st.Sub(et.t0),
		Dur:     dur,
		Node:    node,
		Group:   group,
		Attempt: attempt,
		Note:    note,
	})
	et.mu.Unlock()
}

// Spans returns a copy of the spans recorded so far.
func (et *EventTrace) Spans() []Span {
	if et == nil {
		return nil
	}
	et.mu.Lock()
	defer et.mu.Unlock()
	return append([]Span(nil), et.spans...)
}

// TracerConfig tunes a Tracer.
type TracerConfig struct {
	// Capacity is the ring size in events (default 1024): the trace buffer
	// keeps the most recent Capacity sampled events.
	Capacity int
	// SampleRate is the fraction of events traced, in [0, 1] (default 1).
	// Sampling is a deterministic hash of (Seed, seq): the same seed and
	// rate trace exactly the same events, run after run, regardless of
	// goroutine interleaving.
	SampleRate float64
	// Seed drives the sampling hash.
	Seed int64
}

// Tracer records sampled per-event lifecycle traces into a bounded ring.
// Begin is the only hot-path call, and for unsampled events it is one hash
// and a compare. Nil-safe throughout.
type Tracer struct {
	cfg TracerConfig

	mu   sync.Mutex
	ring []*EventTrace
	next int
	n    int // total sampled events ever begun
}

// NewTracer validates the config and builds a tracer.
func NewTracer(cfg TracerConfig) (*Tracer, error) {
	if cfg.Capacity == 0 {
		cfg.Capacity = 1024
	}
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("telemetry: tracer capacity %d", cfg.Capacity)
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 1
	}
	if cfg.SampleRate < 0 || cfg.SampleRate > 1 {
		return nil, fmt.Errorf("telemetry: sample rate %v, need [0,1]", cfg.SampleRate)
	}
	return &Tracer{
		cfg:  cfg,
		ring: make([]*EventTrace, cfg.Capacity),
	}, nil
}

// splitmix64 is the same mixing function the fault injector uses: cheap,
// high-quality avalanche, so sampling is uniform over sequence numbers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sampled reports whether the event with this sequence number is traced:
// the (Seed, seq) hash, mapped to [0, 1), falls below the sample rate.
func (t *Tracer) Sampled(seq int64) bool {
	if t == nil {
		return false
	}
	if t.cfg.SampleRate >= 1 {
		return true
	}
	h := splitmix64(uint64(seq) ^ splitmix64(uint64(t.cfg.Seed)))
	return float64(h)/math.Ldexp(1, 64) < t.cfg.SampleRate
}

// Begin starts a trace for the event, or returns nil when the event is not
// sampled. The trace is registered into the ring immediately, so exports
// observe in-flight events with however many spans they have accumulated.
func (t *Tracer) Begin(seq int64) *EventTrace {
	if t == nil || !t.Sampled(seq) {
		return nil
	}
	et := &EventTrace{Seq: seq, t0: time.Now()}
	t.mu.Lock()
	t.ring[t.next] = et
	t.next = (t.next + 1) % len(t.ring)
	t.n++
	t.mu.Unlock()
	return et
}

// Sampled events ever begun (including ones already evicted from the ring).
func (t *Tracer) Count() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Traces returns the retained traces, oldest first.
func (t *Tracer) Traces() []*EventTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*EventTrace, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		et := t.ring[(t.next+i)%len(t.ring)]
		if et != nil {
			out = append(out, et)
		}
	}
	return out
}

// traceRecord is the JSONL wire form of one trace.
type traceRecord struct {
	Seq   int64  `json:"seq"`
	Spans []Span `json:"spans"`
}

// WriteJSONL serialises the retained traces as one JSON object per line,
// oldest first — the offline-analysis export format.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, et := range t.Traces() {
		if err := enc.Encode(traceRecord{Seq: et.Seq, Spans: et.Spans()}); err != nil {
			return err
		}
	}
	return nil
}
