package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Buckets is a histogram bucket layout: ascending finite upper bounds, with
// an implicit +Inf overflow bucket appended at record time. Layouts are
// fixed at histogram creation so recording never allocates.
type Buckets struct {
	bounds []float64
}

// Bounds returns a copy of the finite upper bounds.
func (b Buckets) Bounds() []float64 {
	return append([]float64(nil), b.bounds...)
}

// PowerOfTwoBuckets returns n buckets with upper bounds lo, 2·lo, 4·lo, …,
// lo·2^(n-1) — the latency layout: constant relative error across orders of
// magnitude. Panics on lo ≤ 0 or n < 1 (bucket layouts are compile-time
// decisions; a bad one is a programming error).
func PowerOfTwoBuckets(lo float64, n int) Buckets {
	if lo <= 0 || n < 1 {
		panic(fmt.Sprintf("telemetry: PowerOfTwoBuckets(%v, %d)", lo, n))
	}
	bounds := make([]float64, n)
	for i := range bounds {
		bounds[i] = lo * math.Pow(2, float64(i))
	}
	return Buckets{bounds: bounds}
}

// LatencyBuckets is the standard layout for durations in nanoseconds:
// 1µs · 2^i for 24 buckets, covering 1µs to ~8.4s.
func LatencyBuckets() Buckets {
	return PowerOfTwoBuckets(1000, 24)
}

// LinearBuckets returns n buckets with upper bounds start+width,
// start+2·width, …, start+n·width — the cost layout: uniform absolute
// resolution over a known range. Panics on width ≤ 0 or n < 1.
func LinearBuckets(start, width float64, n int) Buckets {
	if width <= 0 || n < 1 {
		panic(fmt.Sprintf("telemetry: LinearBuckets(%v, %v, %d)", start, width, n))
	}
	bounds := make([]float64, n)
	for i := range bounds {
		bounds[i] = start + width*float64(i+1)
	}
	return Buckets{bounds: bounds}
}

// Histogram counts observations into fixed buckets. Recording is lock-free:
// one atomic add on the bucket, one on the count, one CAS loop on the sum.
// Obtain histograms from a Scope; all methods are nil-safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(b Buckets) *Histogram {
	bounds := append([]float64(nil), b.bounds...)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: bucket bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v (bounds are upper-inclusive)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d))
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts[i] holds
// observations v with Bounds[i-1] < v ≤ Bounds[i]; the last entry is the
// +Inf overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	// Mean and the quantiles are derived at snapshot time for exports.
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// Snapshot copies the histogram's current state. Bucket counts are loaded
// individually while writers keep running, so the copy can be mid-update
// across buckets, but Count is loaded first and never exceeds the sum of
// the copied bucket counts — successive snapshots are monotone in Count and
// in every bucket.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket containing the target rank. Values in the overflow
// bucket are reported as the largest finite bound. Returns 0 for an empty
// histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1] // overflow: clamp to last finite bound
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}
