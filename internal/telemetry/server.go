package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewHandler builds the observability HTTP mux:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  expvar-style JSON snapshot (with p50/p95/p99 per histogram)
//	/trace         retained event traces as JSONL
//	/debug/pprof/  the standard runtime profiler endpoints
//
// reg and tr may be nil; the endpoints then serve empty documents. The
// pprof routes are wired explicitly so the handler never depends on
// http.DefaultServeMux.
func NewHandler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, reg)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = tr.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve listens on addr (":6060", "127.0.0.1:0", ...) and serves the
// observability mux in a background goroutine until Close.
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewHandler(reg, tr), ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (resolves ":0" ports).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
