package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestBucketLayouts(t *testing.T) {
	p := PowerOfTwoBuckets(1000, 5).Bounds()
	want := []float64{1000, 2000, 4000, 8000, 16000}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("PowerOfTwoBuckets bound %d = %v, want %v", i, p[i], want[i])
		}
	}
	l := LinearBuckets(0, 25, 4).Bounds()
	want = []float64{25, 50, 75, 100}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("LinearBuckets bound %d = %v, want %v", i, l[i], want[i])
		}
	}
	for _, fn := range []func(){
		func() { PowerOfTwoBuckets(0, 3) },
		func() { PowerOfTwoBuckets(1, 0) },
		func() { LinearBuckets(0, 0, 3) },
		func() { LinearBuckets(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid bucket layout did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestHistogramInvariants is the property test: for random observation
// sets, (a) the bucket counts always sum to the total count, (b) every
// observation lands in the unique bucket whose bound range contains it,
// (c) Sum equals the sum of observations, and (d) the quantile estimate is
// bracketed by the true bucket containing the exact quantile.
func TestHistogramInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var b Buckets
		if trial%2 == 0 {
			b = PowerOfTwoBuckets(1+rng.Float64()*10, 1+rng.Intn(20))
		} else {
			b = LinearBuckets(rng.Float64()*10, 0.5+rng.Float64()*20, 1+rng.Intn(30))
		}
		h := newHistogram(b)
		bounds := b.Bounds()
		n := rng.Intn(500)
		vals := make([]float64, n)
		sum := 0.0
		wantBuckets := make([]int64, len(bounds)+1)
		for i := range vals {
			v := rng.Float64() * bounds[len(bounds)-1] * 1.5 // spill into overflow sometimes
			vals[i] = v
			sum += v
			h.Observe(v)
			wantBuckets[sort.SearchFloat64s(bounds, v)]++
		}
		s := h.Snapshot()

		var total int64
		for i, c := range s.Counts {
			total += c
			if c != wantBuckets[i] {
				t.Fatalf("trial %d: bucket %d = %d, want %d", trial, i, c, wantBuckets[i])
			}
		}
		if total != s.Count || s.Count != int64(n) {
			t.Fatalf("trial %d: bucket sum %d, count %d, observed %d", trial, total, s.Count, n)
		}
		if math.Abs(s.Sum-sum) > 1e-6*math.Max(1, math.Abs(sum)) {
			t.Fatalf("trial %d: sum = %v, want %v", trial, s.Sum, sum)
		}
		if n > 0 && math.Abs(s.Mean-sum/float64(n)) > 1e-9*math.Max(1, math.Abs(s.Mean)) {
			t.Fatalf("trial %d: mean = %v, want %v", trial, s.Mean, sum/float64(n))
		}

		// Quantile bracketing: the estimate must lie within the bucket that
		// contains the exact empirical quantile.
		if n > 0 {
			sort.Float64s(vals)
			for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
				est := s.Quantile(q)
				rank := int(math.Ceil(q*float64(n))) - 1
				if rank < 0 {
					rank = 0
				}
				exact := vals[rank]
				bi := sort.SearchFloat64s(bounds, exact)
				lo, hi := 0.0, math.Inf(1)
				if bi > 0 {
					lo = bounds[bi-1]
				}
				if bi < len(bounds) {
					hi = bounds[bi]
				} else {
					// Overflow values are clamped to the last finite bound.
					lo, hi = bounds[len(bounds)-1], bounds[len(bounds)-1]
				}
				if est < lo-1e-9 || est > hi+1e-9 {
					t.Fatalf("trial %d: q=%v estimate %v outside bucket [%v, %v] of exact %v",
						trial, q, est, lo, hi, exact)
				}
			}
		}
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h := newHistogram(LinearBuckets(0, 1, 2))
	h.Observe(math.NaN())
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("NaN was recorded: %+v", s)
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := newHistogram(LinearBuckets(0, 1, 2))
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

func TestObserveDurationUsesNanoseconds(t *testing.T) {
	h := newHistogram(LatencyBuckets())
	h.ObserveDuration(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 3e6 {
		t.Fatalf("duration recorded as %+v, want one 3e6ns observation", s)
	}
}

func TestStartRecordsElapsed(t *testing.T) {
	h := newHistogram(LatencyBuckets())
	stop := h.Start()
	time.Sleep(time.Millisecond)
	d := stop()
	if d < time.Millisecond {
		t.Fatalf("stop returned %v, slept 1ms", d)
	}
	if s := h.Snapshot(); s.Count != 1 || s.Sum < 1e6 {
		t.Fatalf("timer recorded %+v", s)
	}
}
