package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServerEndpoints boots a real listener and exercises every route.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("broker").Counter("deliveries").Add(9)
	tr, err := NewTracer(TracerConfig{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr.Begin(1).Add("match", time.Now(), time.Microsecond, -1, -1, 0, "")

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "repro_broker_deliveries 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}

	body, ct = get("/metrics.json")
	var snap map[string]ScopeSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Errorf("/metrics.json invalid: %v", err)
	} else if snap["broker"].Counters["deliveries"] != 9 {
		t.Errorf("/metrics.json wrong snapshot: %+v", snap)
	}
	if !strings.Contains(ct, "application/json") {
		t.Errorf("/metrics.json content type %q", ct)
	}

	body, _ = get("/trace")
	if !strings.Contains(body, `"name":"match"`) {
		t.Errorf("/trace missing span:\n%s", body)
	}

	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected:\n%.200s", body)
	}
}

func TestServeNilRegistryAndTracer(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/metrics.json", "/trace"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}
