package federate

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/topology"
	"repro/internal/workload"
)

// BenchmarkFederatePublishDeliver measures end-to-end publish→deliver
// latency through the router — fan-out, per-shard decide, merge, dedup
// — for a single-shard federation (the router as pure overhead over one
// broker) against a four-shard one (parallel per-tile decides, smaller
// per-shard match state). Each op publishes one event and waits for its
// first merged delivery, so the p50/p99 metrics are whole-path lags,
// comparable with the replication-lag rows in BENCH_cluster.json.
func BenchmarkFederatePublishDeliver(b *testing.B) {
	// Sub-benchmark names avoid a trailing -N, which benchrecord (like
	// benchstat) would strip as a GOMAXPROCS suffix.
	b.Run("shards=1", func(b *testing.B) { benchFederate(b, 1) })
	b.Run("shards=4", func(b *testing.B) { benchFederate(b, 4) })
}

func benchFederate(b *testing.B, shards int) {
	w := stockWorld(b, 951)
	train := w.Events(800, 953)
	tiles, err := Derive(w, train, shards)
	if err != nil {
		b.Fatal(err)
	}

	// starts maps a global seq to its publish time; the observer signals
	// the first delivery of each event on firstCh. Exactly one publish is
	// outstanding at a time, so the channel never backs up.
	var mu sync.Mutex
	starts := map[int64]time.Time{}
	firstCh := make(chan time.Duration, 1)
	r, err := NewRouter(Config{
		Tiles: tiles,
		Observer: func(n topology.NodeID, d broker.Delivery) {
			mu.Lock()
			t0, ok := starts[d.Seq]
			if ok {
				delete(starts, d.Seq)
			}
			mu.Unlock()
			if ok {
				firstCh <- time.Since(t0)
			}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	for i, tile := range tiles {
		e, _ := tileEngine(b, w, tile, train)
		bk, err := broker.New(e, broker.WithWorkers(2), broker.WithObserver(r.ShardObserver(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Attach(i, bk); err != nil {
			b.Fatal(err)
		}
	}

	// Only events with at least one interested node terminate the
	// wait-for-first-delivery loop; filter the rest out up front.
	var evs []workload.Event
	for _, ev := range w.Events(4096, 955) {
		if len(interestedNodes(w, ev)) > 0 {
			evs = append(evs, ev)
		}
	}
	if len(evs) == 0 {
		b.Fatal("no deliverable events in the benchmark stream")
	}

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := evs[i%len(evs)]
		mu.Lock()
		starts[int64(i)] = time.Now() // router seqs are dense from 0
		mu.Unlock()
		if _, err := r.PublishSeq(ev); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, <-firstCh)
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return float64(lat[i].Nanoseconds())
	}
	b.ReportMetric(pct(0.50), "p50-e2e-ns")
	b.ReportMetric(pct(0.99), "p99-e2e-ns")
}
