package federate

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

// testCfg mirrors the broker/replicate suites so per-tile engines come
// out of the same clustering machinery.
var testCfg = core.Config{Groups: 25, CellBudget: 500}

// stockWorld builds the deterministic evaluation world the other suites
// use.
func stockWorld(t testing.TB, seed int64) *workload.World {
	t.Helper()
	topo := topology.Eval600
	topo.Seed = seed
	g, err := topology.Generate(topo)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: 300, PubModes: 1, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// tileWorld restricts w to the subscriptions intersecting tile — the
// world one shard serves.
func tileWorld(t testing.TB, w *workload.World, tile space.Rect) *workload.World {
	t.Helper()
	tw, err := TileWorld(w, tile)
	if err != nil {
		t.Fatal(err)
	}
	return tw
}

// tileEngine builds the decision engine one shard runs: the tile's
// subscription population clustered against the full training stream.
func tileEngine(t testing.TB, w *workload.World, tile space.Rect, train []workload.Event) (*core.Engine, *workload.World) {
	t.Helper()
	tw := tileWorld(t, w, tile)
	e, err := core.NewFromWorld(tw, train, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, tw
}

// ekey fingerprints an event by identity, not seq: shard-local seqs are
// reused across failover incarnations, and the router's global seqs are
// an implementation detail the oracle should not depend on.
func ekey(ev workload.Event) string { return fmt.Sprintf("%d|%v", ev.Pub, ev.Point) }

// nk identifies one message copy: (node, event).
type nk struct {
	node topology.NodeID
	ev   string
}

// fedObs tallies the router's merged delivery stream.
type fedObs struct {
	mu  sync.Mutex
	all map[nk]int
}

func newFedObs() *fedObs { return &fedObs{all: map[nk]int{}} }

func (o *fedObs) cb() func(topology.NodeID, broker.Delivery) {
	return func(n topology.NodeID, d broker.Delivery) {
		k := nk{n, ekey(d.Event)}
		o.mu.Lock()
		o.all[k]++
		o.mu.Unlock()
	}
}

func (o *fedObs) count(n topology.NodeID, ev workload.Event) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.all[nk{n, ekey(ev)}]
}

func interestedNodes(w *workload.World, ev workload.Event) map[topology.NodeID]bool {
	out := map[topology.NodeID]bool{}
	for _, s := range w.Subs {
		if s.Rect.Contains(ev.Point) {
			out[s.Owner] = true
		}
	}
	return out
}

// checkExactlyOnce asserts the federated contract against the full
// world's brute-force match: every acked event reaches each interested
// node exactly once, unacked events at most once, and no (node, event)
// pair is ever delivered twice.
func checkExactlyOnce(t *testing.T, w *workload.World, evs []workload.Event, acked []bool, o *fedObs) {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	for i, ev := range evs {
		for n := range interestedNodes(w, ev) {
			got := o.all[nk{n, ekey(ev)}]
			if acked[i] && got != 1 {
				t.Errorf("acked event %d delivered %d times to interested node %d, want exactly 1", i, got, n)
			}
			if !acked[i] && got > 1 {
				t.Errorf("unacked event %d delivered %d times to node %d", i, got, n)
			}
		}
	}
	for k, c := range o.all {
		if c > 1 {
			t.Errorf("node %d received %q %d times (cross-shard dedup failed)", k.node, k.ev, c)
		}
	}
}

// fed is one in-process federation under test.
type fed struct {
	w       *workload.World
	train   []workload.Event
	tiles   Partition
	r       *Router
	brokers []*broker.Broker
	o       *fedObs
}

// startFed derives an n-tile partition over a stock world and attaches
// one in-process broker per tile.
func startFed(t *testing.T, seed int64, n int) *fed {
	t.Helper()
	w := stockWorld(t, seed)
	train := w.Events(800, seed+2)
	tiles, err := Derive(w, train, n)
	if err != nil {
		t.Fatal(err)
	}
	f := &fed{w: w, train: train, tiles: tiles, o: newFedObs()}
	f.r, err = NewRouter(Config{Tiles: tiles, Observer: f.o.cb()})
	if err != nil {
		t.Fatal(err)
	}
	for i, tile := range tiles {
		e, _ := tileEngine(t, w, tile, train)
		b, err := broker.New(e, broker.WithWorkers(2), broker.WithObserver(f.r.ShardObserver(i)))
		if err != nil {
			t.Fatal(err)
		}
		f.brokers = append(f.brokers, b)
		if err := f.r.Attach(i, b); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { f.r.Close() })
	return f
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
