package federate

import (
	"fmt"
	"strings"

	"repro/internal/broker"
	"repro/internal/multicast"
	"repro/internal/replicate"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Remote adapts a transport client connection to broker.Shard, so a
// federation tile can be served by a whole pubsub-server — including a
// replicated pair sharing the listener with its follower via the
// transport's ReplHandler hook. A pump goroutine drains the server's
// delivery stream into the router's merge (Feed), relying on the wire
// v2 Deliver.Node attribution and PubAck.Seq for the seq translation.
type Remote struct {
	conn   *transport.Conn
	router *Router
	idx    int
	done   chan struct{}
}

// AttachRemote dials cfg, attaches the resulting remote shard as tile
// idx of r, and starts the delivery pump. The connection's Subs list
// should normally be empty — the router registers subscriptions shard
// by shard after partitioning them.
func AttachRemote(r *Router, idx int, cfg transport.ClientConfig) (*Remote, error) {
	if idx < 0 || idx >= r.NumShards() {
		return nil, fmt.Errorf("federate: shard index %d out of range [0,%d)", idx, r.NumShards())
	}
	conn, err := transport.Dial(cfg)
	if err != nil {
		return nil, err
	}
	m := &Remote{conn: conn, router: r, idx: idx, done: make(chan struct{})}
	go m.pump()
	if err := r.Attach(idx, m); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// pump forwards the server's deliveries into the router merge until the
// connection closes.
func (m *Remote) pump() {
	defer close(m.done)
	for {
		d, ok := m.conn.Recv()
		if !ok {
			return
		}
		m.router.Feed(m.idx, d.Node, broker.Delivery{
			Event:      d.Ev,
			Seq:        d.Seq,
			Method:     multicast.Method(d.Method),
			Group:      int(d.Group),
			Interested: d.Interested,
		})
	}
}

// classify rewraps the flattened error strings a server ack carries so
// the router's Retryable check sees the typed sentinel again.
func classify(err error) error {
	if err == nil {
		return nil
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "fenced"):
		return fmt.Errorf("%w (remote: %s)", replicate.ErrFenced, msg)
	case strings.Contains(msg, "not the leader"):
		return fmt.Errorf("%w (remote: %s)", replicate.ErrNotLeader, msg)
	}
	return err
}

// Decide publishes ev on the remote broker.
func (m *Remote) Decide(ev workload.Event) error {
	_, err := m.DecideSeq(ev)
	return err
}

// DecideSeq publishes ev and reports the remote broker's publication
// seq (the wire ack carries it since protocol v2).
func (m *Remote) DecideSeq(ev workload.Event) (int64, error) {
	seq, err := m.conn.PublishSeq(ev)
	return seq, classify(err)
}

// Apply routes a subscribe/unsubscribe mutation over the wire.
func (m *Remote) Apply(mu broker.Mutation) (int, error) {
	if mu.Subscribe != nil {
		slot, err := m.conn.Subscribe(mu.Subscribe.Owner, mu.Subscribe.Rect)
		return int(slot), classify(err)
	}
	return mu.Slot, classify(m.conn.Unsubscribe(int64(mu.Slot)))
}

// Checkpoint is a no-op: the remote server owns its durability cadence.
func (m *Remote) Checkpoint() error { return nil }

// Snapshot reports no local occupancy; the remote server owns the real
// numbers.
func (m *Remote) Snapshot() broker.ShardInfo { return broker.ShardInfo{} }

// Close tears down the connection and waits for the pump to drain.
func (m *Remote) Close() error {
	err := m.conn.Close()
	<-m.done
	return err
}
