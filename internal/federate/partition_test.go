package federate

import (
	"math"
	"testing"

	"repro/internal/space"
)

func TestDeriveRejectsBadShardCounts(t *testing.T) {
	w := stockWorld(t, 901)
	train := w.Events(200, 903)
	for _, n := range []int{0, -1, 3, 6, 12} {
		if _, err := Derive(w, train, n); err == nil {
			t.Errorf("Derive(%d) accepted a non-power-of-two shard count", n)
		}
	}
}

func TestDeriveSingleTileIsFullSpace(t *testing.T) {
	w := stockWorld(t, 905)
	tiles, err := Derive(w, w.Events(200, 906), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 1 {
		t.Fatalf("got %d tiles, want 1", len(tiles))
	}
	for d, iv := range tiles[0] {
		if iv.Bounded() {
			t.Errorf("single tile bounded along dim %d: %v", d, iv)
		}
	}
}

// TestDeriveTilesPartitionSpace proves the structural contract the
// router's exactly-once merge leans on for derived partitions: every
// point — training events, subscription corners, and points far outside
// the trained bounds — has exactly one owning tile.
func TestDeriveTilesPartitionSpace(t *testing.T) {
	w := stockWorld(t, 907)
	train := w.Events(800, 909)
	for _, n := range []int{2, 4, 8} {
		tiles, err := Derive(w, train, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(tiles) != n {
			t.Fatalf("got %d tiles, want %d", len(tiles), n)
		}
		if err := tiles.Validate(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if tiles[i].Intersects(tiles[j]) {
					t.Errorf("n=%d: tiles %d and %d overlap: %v / %v", n, i, j, tiles[i], tiles[j])
				}
			}
		}
		var pts []space.Point
		for _, ev := range train[:200] {
			pts = append(pts, ev.Point)
		}
		for _, s := range w.Subs {
			p := make(space.Point, len(s.Rect))
			for d, iv := range s.Rect {
				p[d] = iv.Hi // rect corners sit exactly on potential cuts
			}
			pts = append(pts, p)
		}
		far := make(space.Point, w.Dim)
		for d := range far {
			far[d] = 1e12
		}
		pts = append(pts, far)
		var owners []int
		for _, p := range pts {
			owners = tiles.Owners(owners[:0], p)
			if len(owners) != 1 {
				t.Fatalf("n=%d: point %v owned by %d tiles, want exactly 1", n, p, len(owners))
			}
		}
	}
}

// TestDeriveBalancesSubscribers checks the weighted split spreads the
// subscription population instead of slicing off empty corners: every
// tile must intersect a meaningful share of the subscriptions.
func TestDeriveBalancesSubscribers(t *testing.T) {
	w := stockWorld(t, 911)
	train := w.Events(800, 913)
	tiles, err := Derive(w, train, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, tile := range tiles {
		n := 0
		for _, s := range w.Subs {
			if s.Rect.Intersects(tile) {
				n++
			}
		}
		// Loose floor: a quarter of a fair share. The split balances
		// p(a)·|s(a)| weight, not raw sub counts, so exact quarters are
		// not expected — but no tile may be starved.
		if n < len(w.Subs)/16 {
			t.Errorf("tile %d intersects only %d/%d subscriptions", i, n, len(w.Subs))
		}
	}
}

// TestPartitionCovering checks subscription→shard ownership, including
// boundary straddlers mapping to several tiles.
func TestPartitionCovering(t *testing.T) {
	tiles := Partition{
		{{Lo: inf(-1), Hi: 5}},
		{{Lo: 5, Hi: inf(1)}},
	}
	if err := tiles.Validate(); err != nil {
		t.Fatal(err)
	}
	var got []int
	got = tiles.Covering(got[:0], space.Rect{{Lo: 1, Hi: 2}})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("left rect covered by %v, want [0]", got)
	}
	got = tiles.Covering(got[:0], space.Rect{{Lo: 4, Hi: 6}})
	if len(got) != 2 {
		t.Errorf("straddling rect covered by %v, want both tiles", got)
	}
}

func inf(sign int) float64 { return math.Inf(sign) }
