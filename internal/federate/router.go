package federate

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/faults"
	"repro/internal/replicate"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

// SlotRef names one shard-local subscription slot. Slot ints are only
// meaningful relative to their shard — two shards freely hand out the
// same slot number — which is exactly the ambiguity SubID exists to fix.
type SlotRef struct {
	Shard int
	Slot  int
}

// SubID is a federation-wide subscription identifier. It is opaque and
// never collides across shards; the router resolves it back to the
// owning (shard, slot) pairs on Unsubscribe.
type SubID int64

// Config parameterises a Router.
type Config struct {
	// Tiles is the shard partition; shard i owns Tiles[i]. Required.
	Tiles Partition

	// Observer receives every federated delivery exactly once, with
	// Delivery.Seq rewritten to the router-global publication seq.
	// Called from shard consumer goroutines; may be nil.
	Observer func(topology.NodeID, broker.Delivery)

	// Resolve, when non-nil, is asked for a replacement shard after a
	// retryable decide/apply failure (fenced, crashed, closed,
	// not-leader). Returning nil means "no replacement yet"; the router
	// backs off and asks again. Failover controllers that push the
	// promoted broker via Attach instead can leave this nil.
	Resolve func(shard int) broker.Shard

	// DedupWindow bounds the per-subscriber duplicate-suppression
	// window, in deliveries. It must exceed the number of deliveries a
	// shard can replay after a failover (journaled-but-unacked tail plus
	// in-flight fan-out). 0 means 4096.
	DedupWindow int

	// MapWindow bounds each shard's local→global seq translation table,
	// in publications. 0 means 65536.
	MapWindow int

	// MaxRetries, RetryBackoff and RetryTimeout bound the per-shard
	// retry loop around retryable failures. Zero values mean 64 retries,
	// 2ms initial backoff (doubling, capped at 100ms), 10s deadline.
	MaxRetries   int
	RetryBackoff time.Duration
	RetryTimeout time.Duration
}

// Router fans the pub-sub surface out over one broker.Shard per tile
// and merges the results back into a single exactly-once delivery
// stream. See the package comment for the protocol.
//
// Router implements transport.Backend, so a pubsub-server can serve a
// whole federation through one listener.
type Router struct {
	cfg   Config
	tiles Partition

	// shards[i] is tile i's current shard; swapped on failover via
	// Attach, read on every decide. Guarded by mu.
	mu      sync.RWMutex
	shards  []broker.Shard
	subs    map[SubID][]SlotRef
	nextSub SubID

	maps []*seqMap // per-shard local→global seq translation

	dedupMu sync.Mutex
	dedup   map[topology.NodeID]*dedupWindow

	gseq   atomic.Int64
	closed atomic.Bool
	stats  counters
}

var _ transport.Backend = (*Router)(nil)

// NewRouter builds a router over cfg.Tiles with no shards attached yet;
// call Attach (or AttachRemote) for each tile before publishing.
func NewRouter(cfg Config) (*Router, error) {
	if err := cfg.Tiles.Validate(); err != nil {
		return nil, err
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 4096
	}
	if cfg.MapWindow <= 0 {
		cfg.MapWindow = 65536
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 64
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 2 * time.Millisecond
	}
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 10 * time.Second
	}
	r := &Router{
		cfg:    cfg,
		tiles:  append(Partition(nil), cfg.Tiles...),
		shards: make([]broker.Shard, len(cfg.Tiles)),
		subs:   make(map[SubID][]SlotRef),
		maps:   make([]*seqMap, len(cfg.Tiles)),
		dedup:  make(map[topology.NodeID]*dedupWindow),
	}
	for i := range r.maps {
		r.maps[i] = newSeqMap(cfg.MapWindow)
	}
	return r, nil
}

// NumShards returns the tile count.
func (r *Router) NumShards() int { return len(r.tiles) }

// Tile returns shard i's responsibility rectangle.
func (r *Router) Tile(i int) Partition { return Partition{r.tiles[i]} }

// Attach installs (or replaces, after a failover) tile i's shard. The
// old shard, if any, is not closed — failover controllers own that.
func (r *Router) Attach(i int, s broker.Shard) error {
	if i < 0 || i >= len(r.tiles) {
		return fmt.Errorf("federate: shard index %d out of range [0,%d)", i, len(r.tiles))
	}
	r.mu.Lock()
	r.shards[i] = s
	r.mu.Unlock()
	return nil
}

// ShardObserver returns the delivery observer to install on tile i's
// broker (broker.WithObserver / replicate promotion options). It routes
// the shard's deliveries through the federation merge.
func (r *Router) ShardObserver(i int) func(topology.NodeID, broker.Delivery) {
	return func(n topology.NodeID, d broker.Delivery) { r.Feed(i, n, d) }
}

// shard reads tile i's current shard.
func (r *Router) shard(i int) broker.Shard {
	r.mu.RLock()
	s := r.shards[i]
	r.mu.RUnlock()
	return s
}

// Retryable reports whether a shard error should trigger shard
// re-resolution and retry rather than failing the operation: fencing
// after a promotion, a not-yet-promoted standby, a simulated crash, a
// shard (or its connection) closed mid-failover.
func Retryable(err error) bool {
	return errors.Is(err, replicate.ErrFenced) ||
		errors.Is(err, replicate.ErrNotLeader) ||
		errors.Is(err, faults.ErrCrashed) ||
		errors.Is(err, broker.ErrClosed) ||
		errors.Is(err, transport.ErrConnClosed) ||
		errors.Is(err, ErrNoShard)
}

// withShard runs op against tile i's shard, retrying retryable failures
// with backoff and re-resolution until the retry budget is exhausted.
func (r *Router) withShard(i int, op func(s broker.Shard) error) error {
	deadline := time.Now().Add(r.cfg.RetryTimeout)
	backoff := r.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if r.closed.Load() {
			return ErrClosed
		}
		if s := r.shard(i); s != nil {
			err := op(s)
			if err == nil {
				return nil
			}
			if !Retryable(err) {
				return err
			}
			lastErr = err
		} else {
			lastErr = ErrNoShard
		}
		if attempt >= r.cfg.MaxRetries || !time.Now().Before(deadline) {
			return fmt.Errorf("federate: shard %d unavailable after %d attempts: %w", i, attempt+1, lastErr)
		}
		r.stats.retries.Add(1)
		if r.cfg.Resolve != nil {
			if ns := r.cfg.Resolve(i); ns != nil && ns != r.shard(i) {
				r.Attach(i, ns)
				r.stats.resolves.Add(1)
			}
		}
		time.Sleep(backoff)
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

// Publish fans ev out to every shard whose tile contains the event
// point. See PublishSeq.
func (r *Router) Publish(ev workload.Event) error {
	_, err := r.PublishSeq(ev)
	return err
}

// PublishSeq publishes ev under a fresh router-global seq, fanning it
// out to every owning shard and recording each shard's local seq for
// delivery translation. The global seq is returned even on error: a
// shard may have journaled the event (and will deliver it after a
// failover replay) even when its publish call failed, and the recorded
// translation is what keeps that replay plus the router's retry from
// double delivering.
func (r *Router) PublishSeq(ev workload.Event) (int64, error) {
	if r.closed.Load() {
		return -1, ErrClosed
	}
	var owners [8]int
	own := r.tiles.Owners(owners[:0], ev.Point)
	if len(own) == 0 {
		return -1, fmt.Errorf("federate: no tile owns event point %v", ev.Point)
	}
	g := r.gseq.Add(1) - 1
	r.stats.published.Add(1)
	var firstErr error
	for _, i := range own {
		i := i
		err := r.withShard(i, func(s broker.Shard) error {
			r.stats.fanout.Add(1)
			local, derr := s.DecideSeq(ev)
			if local >= 0 {
				// Record even on error: the seq was consumed, possibly
				// journaled, and may resurface as a failover replay.
				r.maps[i].record(local, g)
			}
			return derr
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return g, firstErr
}

// Subscribe registers s on every shard whose tile intersects its
// rectangle and returns the federation-wide id as an int (satisfying
// transport.Backend); SubscribeID returns the typed form.
func (r *Router) Subscribe(s workload.Subscription) (int, error) {
	id, err := r.SubscribeID(s)
	return int(id), err
}

// SubscribeID registers s across the federation. A rectangle straddling
// a tile boundary is registered on every intersecting shard; the
// returned SubID resolves back to all of them.
func (r *Router) SubscribeID(s workload.Subscription) (SubID, error) {
	if r.closed.Load() {
		return -1, ErrClosed
	}
	var cover [8]int
	own := r.tiles.Covering(cover[:0], s.Rect)
	if len(own) == 0 {
		return -1, fmt.Errorf("federate: no tile intersects subscription rect %v", s.Rect)
	}
	refs := make([]SlotRef, 0, len(own))
	for _, i := range own {
		var slot int
		err := r.withShard(i, func(sh broker.Shard) error {
			got, aerr := sh.Apply(broker.Mutation{Subscribe: &s})
			if aerr == nil {
				slot = got
			}
			return aerr
		})
		if err != nil {
			// Roll back the shards already registered so a failed
			// subscribe leaves no half-installed straddler behind.
			for _, ref := range refs {
				ref := ref
				_ = r.withShard(ref.Shard, func(sh broker.Shard) error {
					_, uerr := sh.Apply(broker.Mutation{Slot: ref.Slot})
					return uerr
				})
			}
			return -1, err
		}
		refs = append(refs, SlotRef{Shard: i, Slot: slot})
	}
	if len(refs) > 1 {
		r.stats.crossShardSubs.Add(1)
	}
	r.mu.Lock()
	id := r.nextSub
	r.nextSub++
	r.subs[id] = refs
	r.mu.Unlock()
	return id, nil
}

// Unsubscribe cancels the subscription by federation id (the int form
// of the SubID returned by Subscribe), removing it from every shard it
// was registered on.
func (r *Router) Unsubscribe(id int) error { return r.UnsubscribeID(SubID(id)) }

// UnsubscribeID cancels the subscription on every owning shard.
func (r *Router) UnsubscribeID(id SubID) error {
	if r.closed.Load() {
		return ErrClosed
	}
	r.mu.Lock()
	refs, ok := r.subs[id]
	if ok {
		delete(r.subs, id)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSub, id)
	}
	var firstErr error
	for _, ref := range refs {
		ref := ref
		err := r.withShard(ref.Shard, func(sh broker.Shard) error {
			_, uerr := sh.Apply(broker.Mutation{Slot: ref.Slot})
			return uerr
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Refs returns the (shard, slot) pairs behind a subscription id —
// observability for tests and operators; the slots themselves must not
// be fed back into shard APIs behind the router's back.
func (r *Router) Refs(id SubID) []SlotRef {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]SlotRef(nil), r.subs[id]...)
}

// feedWait bounds how long Feed polls for a missing seq translation.
// Deliveries race the recording DecideSeq return by nanoseconds; only a
// replay of pre-router journal content waits the full budget.
const feedWait = 20 * time.Millisecond

// Feed merges one delivery from shard i into the federated stream:
// translate the shard-local seq to the router-global one, suppress
// duplicates per subscriber node, forward the survivor. It is the body
// of ShardObserver(i) and the entry point for remote shard pumps.
func (r *Router) Feed(i int, n topology.NodeID, d broker.Delivery) {
	g, ok := r.maps[i].lookup(d.Seq)
	if !ok {
		// The broker can deliver before PublishSeq returns to the
		// router; give the translation a moment to be recorded.
		deadline := time.Now().Add(feedWait)
		for !ok && time.Now().Before(deadline) && !r.closed.Load() {
			time.Sleep(100 * time.Microsecond)
			g, ok = r.maps[i].lookup(d.Seq)
		}
	}
	if !ok {
		// A replay from an incarnation predating this router: no global
		// seq exists. Dedup under a synthetic per-(shard, local-seq) key
		// (always negative, so it cannot collide with global seqs) so
		// repeated replays still collapse.
		r.stats.unmapped.Add(1)
		g = ^(int64(i)<<48 | d.Seq)
	}
	r.dedupMu.Lock()
	w := r.dedup[n]
	if w == nil {
		w = newDedupWindow(r.cfg.DedupWindow)
		r.dedup[n] = w
	}
	fresh := w.admit(g)
	r.dedupMu.Unlock()
	if !fresh {
		r.stats.suppressed.Add(1)
		return
	}
	d.Seq = g
	r.stats.delivered.Add(1)
	if r.cfg.Observer != nil {
		r.cfg.Observer(n, d)
	}
}

// Checkpoint checkpoints every attached shard.
func (r *Router) Checkpoint() error {
	var firstErr error
	for i := range r.tiles {
		if s := r.shard(i); s != nil {
			if err := s.Checkpoint(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Stats snapshots the router's counters.
func (r *Router) Stats() Stats { return r.stats.snapshot() }

// Close marks the router closed and closes every distinct attached
// shard once. Further operations return ErrClosed.
func (r *Router) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	r.mu.Lock()
	shards := append([]broker.Shard(nil), r.shards...)
	r.mu.Unlock()
	seen := make(map[broker.Shard]bool, len(shards))
	var firstErr error
	for _, s := range shards {
		if s == nil || seen[s] {
			continue
		}
		seen[s] = true
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
