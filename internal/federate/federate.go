// Package federate partitions the subscription space across N broker
// shards and routes the full pub-sub surface over them — the first
// multi-broker deployment shape on the road to the million-user north
// star (the subscription-subgrouping line of work: partitioned subgroups
// decouple routing paths from any single broker and tolerate multiple
// paths).
//
// The pieces:
//
//   - Partition: an ordered list of rectangles tiling the event space,
//     derived from the same grid + per-cell subscription-density
//     machinery the clustering engine uses (Derive splits the grid
//     k-d-style along axis boundaries, balancing subscriber weight).
//     Tiles produced by Derive are disjoint; the Router is also correct
//     over hand-built overlapping tiles — overlap just turns into
//     fan-out plus dedup.
//
//   - Router: owns one broker.Shard per tile. Subscribe registers the
//     subscription on every shard whose tile its rectangle intersects
//     (a boundary-straddling subscription lives on several shards) and
//     returns a federation-wide SubID, so Unsubscribe routes back to
//     exactly the owning (shard, slot) pairs — shard-local slot ints
//     collide across shards and must never escape the router. Publish
//     fans the event out to every shard whose tile contains the point
//     and stamps it with a router-global sequence number.
//
//   - Exactly-once across shards: every shard delivery is translated
//     from the shard-local publication seq to the router-global seq
//     (shards report the seq they consumed via Shard.DecideSeq, even
//     when the publish then failed — a journaled-but-unacked publish
//     replays after a failover) and deduplicated per subscriber node, so
//     a subscription straddling a tile boundary, a duplicate fan-out
//     after a router retry, and a replay by a promoted standby all
//     collapse to one delivery.
//
//   - Fencing interaction: a shard backed by a replicate.Leader returns
//     replicate.ErrFenced once a standby has been promoted. The router
//     treats fenced (and not-leader, crashed, closed) errors as
//     retryable: it re-resolves the shard — via the Resolve hook or an
//     external Attach of the promoted broker — and re-decides, relying
//     on the seq translation above to keep the retry from double
//     delivering.
//
// Shards may be in-process (*broker.Broker, replicate.Leader/Follower)
// or remote: Remote adapts a transport client connection, so a shard can
// be a whole pubsub-server — including a replicated pair sharing its
// listener with followers via transport.Config.ReplHandler.
package federate

import (
	"errors"
	"sync/atomic"
)

// ErrClosed is returned by router operations after Close.
var ErrClosed = errors.New("federate: router closed")

// ErrNoShard is returned when a tile has no attached shard and
// resolution cannot produce one within the retry budget.
var ErrNoShard = errors.New("federate: no shard attached for tile")

// ErrUnknownSub is returned by Unsubscribe for an id the router never
// issued (or already released).
var ErrUnknownSub = errors.New("federate: unknown subscription id")

// Stats is a point-in-time snapshot of the router's counters.
type Stats struct {
	// Published counts router-level publications; Fanout counts the
	// per-shard decides they expanded into (Fanout/Published > 1 means
	// overlapping tiles or retries).
	Published int64
	Fanout    int64
	// Retries counts decide/apply attempts after a retryable shard
	// failure; Resolves counts shard re-resolutions that installed a new
	// shard (failover handovers).
	Retries  int64
	Resolves int64
	// Delivered counts deliveries forwarded to the observer after
	// cross-shard dedup; Suppressed counts the duplicates dedup caught;
	// Unmapped counts deliveries whose shard-local seq had no recorded
	// translation (replays from before this router's lifetime).
	Delivered  int64
	Suppressed int64
	Unmapped   int64
	// CrossShardSubs counts subscriptions registered on more than one
	// shard (tile-boundary straddlers).
	CrossShardSubs int64
}

// counters is the router's internal mutable form of Stats.
type counters struct {
	published, fanout, retries, resolves atomic.Int64
	delivered, suppressed, unmapped      atomic.Int64
	crossShardSubs                       atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Published:      c.published.Load(),
		Fanout:         c.fanout.Load(),
		Retries:        c.retries.Load(),
		Resolves:       c.resolves.Load(),
		Delivered:      c.delivered.Load(),
		Suppressed:     c.suppressed.Load(),
		Unmapped:       c.unmapped.Load(),
		CrossShardSubs: c.crossShardSubs.Load(),
	}
}
