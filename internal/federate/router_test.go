package federate

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/health"
	"repro/internal/replicate"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestFederatedPublishDeliversExactlyOnce(t *testing.T) {
	f := startFed(t, 801, 4)
	evs := f.w.Events(300, 803)
	acked := make([]bool, len(evs))
	for i := range evs {
		if err := f.r.Publish(evs[i]); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		acked[i] = true
	}
	if err := f.r.Close(); err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, f.w, evs, acked, f.o)
	st := f.r.Stats()
	if st.Published != int64(len(evs)) {
		t.Errorf("Published = %d, want %d", st.Published, len(evs))
	}
	// Disjoint tiles: one decide per publish, no duplicates to suppress.
	if st.Fanout != st.Published {
		t.Errorf("Fanout = %d with disjoint tiles, want %d", st.Fanout, st.Published)
	}
	if st.Delivered == 0 {
		t.Error("no deliveries reached the federated observer")
	}
}

// miniWorld builds a 1-D world with a handful of baked subscriptions —
// small enough to reason about slots and boundaries by hand.
func miniWorld(t *testing.T, g *topology.Graph, rects ...space.Interval) *workload.World {
	t.Helper()
	subs := make([]workload.Subscription, len(rects))
	for i, iv := range rects {
		subs[i] = workload.Subscription{Owner: topology.NodeID(i), Rect: space.Rect{iv}}
	}
	w, err := workload.NewCustomWorld(g, []space.Axis{{Lo: 0, Hi: 10, Cells: 10}}, subs)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func miniEngine(t *testing.T, w *workload.World, train []workload.Event) *core.Engine {
	t.Helper()
	e, err := core.NewFromWorld(w, train, core.Config{Groups: 2, CellBudget: 50})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mkEvents(pts ...float64) []workload.Event {
	evs := make([]workload.Event, len(pts))
	for i, p := range pts {
		evs[i] = workload.Event{Pub: 0, Point: space.Point{p}}
	}
	return evs
}

// TestSubIDDisambiguatesShardLocalSlots is the regression for the
// federated-unsubscribe bug: Broker.Subscribe returns a broker-local
// slot, two shards hand out the very same slot number, and routing an
// unsubscribe by raw slot therefore cancels an arbitrary shard's
// subscription. The router's SubID must resolve to the owning (shard,
// slot) pair, so cancelling B leaves A's identically-numbered slot
// alive.
func TestSubIDDisambiguatesShardLocalSlots(t *testing.T) {
	g := stockWorld(t, 821).Graph
	tiles := Partition{
		{{Lo: inf(-1), Hi: 5}},
		{{Lo: 5, Hi: inf(1)}},
	}
	o := newFedObs()
	r, err := NewRouter(Config{Tiles: tiles, Observer: o.cb()})
	if err != nil {
		t.Fatal(err)
	}
	// Both shard worlds bake the same number of subscriptions, so the
	// first runtime subscribe on each shard yields the same local slot.
	w0 := miniWorld(t, g, space.Interval{Lo: 0, Hi: 0.5}, space.Interval{Lo: 2, Hi: 3})
	w1 := miniWorld(t, g, space.Interval{Lo: 5, Hi: 6}, space.Interval{Lo: 9, Hi: 10})
	train := mkEvents(0.3, 2.5, 5.5, 9.5, 1.5, 7.5)
	for i, w := range []*workload.World{w0, w1} {
		b, err := broker.New(miniEngine(t, w, train), broker.WithWorkers(1), broker.WithObserver(r.ShardObserver(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Attach(i, b); err != nil {
			t.Fatal(err)
		}
	}
	defer r.Close()

	idA, err := r.SubscribeID(workload.Subscription{Owner: 100, Rect: space.Rect{{Lo: 1, Hi: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := r.SubscribeID(workload.Subscription{Owner: 101, Rect: space.Rect{{Lo: 7, Hi: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	refsA, refsB := r.Refs(idA), r.Refs(idB)
	if len(refsA) != 1 || len(refsB) != 1 {
		t.Fatalf("refs = %v / %v, want one shard each", refsA, refsB)
	}
	// The trap the SubID exists for: identical local slots on different
	// shards. Without this collision the test proves nothing.
	if refsA[0].Slot != refsB[0].Slot {
		t.Fatalf("local slots %d vs %d do not collide; harness broken", refsA[0].Slot, refsB[0].Slot)
	}
	if refsA[0].Shard == refsB[0].Shard {
		t.Fatalf("subscriptions landed on the same shard %d; harness broken", refsA[0].Shard)
	}

	if err := r.UnsubscribeID(idB); err != nil {
		t.Fatal(err)
	}
	evA := workload.Event{Pub: 0, Point: space.Point{1.5}}
	evB := workload.Event{Pub: 0, Point: space.Point{7.5}}
	if err := r.Publish(evA); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(evB); err != nil {
		t.Fatal(err)
	}
	// A's subscription (same slot number as the cancelled B) must still
	// be live: the slot-routed implementation cancelled it here.
	waitFor(t, 5*time.Second, "delivery to A", func() bool { return o.count(100, evA) == 1 })
	time.Sleep(50 * time.Millisecond) // let any wrong delivery surface
	if n := o.count(101, evB); n != 0 {
		t.Errorf("cancelled subscription B received %d deliveries", n)
	}
	if err := r.UnsubscribeID(idB); !errors.Is(err, ErrUnknownSub) {
		t.Errorf("double unsubscribe returned %v, want ErrUnknownSub", err)
	}
}

// TestBoundaryStraddlerRegisteredOnBothShards: a subscription crossing
// the tile cut lives on both shards yet its owner sees each matching
// event exactly once, whichever side the event lands on.
func TestBoundaryStraddlerRegisteredOnBothShards(t *testing.T) {
	g := stockWorld(t, 823).Graph
	tiles := Partition{
		{{Lo: inf(-1), Hi: 5}},
		{{Lo: 5, Hi: inf(1)}},
	}
	o := newFedObs()
	r, err := NewRouter(Config{Tiles: tiles, Observer: o.cb()})
	if err != nil {
		t.Fatal(err)
	}
	w0 := miniWorld(t, g, space.Interval{Lo: 0, Hi: 1}, space.Interval{Lo: 2, Hi: 3})
	w1 := miniWorld(t, g, space.Interval{Lo: 6, Hi: 7}, space.Interval{Lo: 9, Hi: 10})
	train := mkEvents(0.5, 2.5, 6.5, 9.5, 4.5, 5.5)
	for i, w := range []*workload.World{w0, w1} {
		b, err := broker.New(miniEngine(t, w, train), broker.WithWorkers(1), broker.WithObserver(r.ShardObserver(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Attach(i, b); err != nil {
			t.Fatal(err)
		}
	}
	defer r.Close()

	id, err := r.SubscribeID(workload.Subscription{Owner: 200, Rect: space.Rect{{Lo: 4, Hi: 6}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Refs(id)); got != 2 {
		t.Fatalf("straddler registered on %d shards, want 2", got)
	}
	if st := r.Stats(); st.CrossShardSubs != 1 {
		t.Errorf("CrossShardSubs = %d, want 1", st.CrossShardSubs)
	}
	left := workload.Event{Pub: 0, Point: space.Point{4.5}}  // shard 0's side
	right := workload.Event{Pub: 0, Point: space.Point{5.5}} // shard 1's side
	for _, ev := range []workload.Event{left, right} {
		if err := r.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "straddler deliveries", func() bool {
		return o.count(200, left) >= 1 && o.count(200, right) >= 1
	})
	time.Sleep(50 * time.Millisecond)
	if n := o.count(200, left); n != 1 {
		t.Errorf("left event delivered %d times, want 1", n)
	}
	if n := o.count(200, right); n != 1 {
		t.Errorf("right event delivered %d times, want 1", n)
	}
	if err := r.UnsubscribeID(id); err != nil {
		t.Fatal(err)
	}
}

// TestOverlappingTilesDeduplicate: with tiles sharing an overlap zone a
// publish in the zone fans out to both shards, each of which decides
// and delivers it — the router's per-(node, global-seq) window must
// collapse the copies.
func TestOverlappingTilesDeduplicate(t *testing.T) {
	g := stockWorld(t, 825).Graph
	tiles := Partition{
		{{Lo: inf(-1), Hi: 6}},
		{{Lo: 4, Hi: inf(1)}},
	}
	o := newFedObs()
	r, err := NewRouter(Config{Tiles: tiles, Observer: o.cb()})
	if err != nil {
		t.Fatal(err)
	}
	// The overlap-zone subscription (4.5, 5.5] is baked into BOTH shard
	// worlds, exactly as tileWorld would do it. It is each world's first
	// rect, so both shards give it the same owner (node 0).
	mid := space.Interval{Lo: 4.5, Hi: 5.5}
	w0 := miniWorld(t, g, mid, space.Interval{Lo: 0, Hi: 1})
	w1 := miniWorld(t, g, mid, space.Interval{Lo: 9, Hi: 10})
	train := mkEvents(0.5, 5.0, 9.5, 4.8, 5.2)
	for i, w := range []*workload.World{w0, w1} {
		b, err := broker.New(miniEngine(t, w, train), broker.WithWorkers(1), broker.WithObserver(r.ShardObserver(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Attach(i, b); err != nil {
			t.Fatal(err)
		}
	}
	evs := mkEvents(5.0, 4.7, 5.3, 4.9, 5.1)
	for i := range evs {
		if err := r.Publish(evs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Fanout != 2*st.Published {
		t.Errorf("Fanout = %d for %d overlap publishes, want %d", st.Fanout, st.Published, 2*st.Published)
	}
	if st.Suppressed == 0 {
		t.Error("overlapping shards produced no suppressed duplicates")
	}
	for _, ev := range evs {
		// w1's owner numbering puts the mid sub at node 0 too, so both
		// shard copies target the same node: exactly one must survive.
		if n := o.count(0, ev); n != 1 {
			t.Errorf("event %v delivered %d times to overlap subscriber, want 1", ev.Point, n)
		}
	}
}

func fastHealth() health.Config {
	return health.Config{OpenTimeout: 10 * time.Second, CheckInterval: 5 * time.Millisecond}
}

// TestFencedLeaderRerouted is the regression for the stale-leader bug:
// after a standby is promoted, publishes routed to the fenced ex-leader
// fail with replicate.ErrFenced; the router must treat that as
// retryable, re-resolve to the promoted broker and re-decide — without
// losing or double-delivering anything across the handover.
func TestFencedLeaderRerouted(t *testing.T) {
	w := stockWorld(t, 831)
	train := w.Events(800, 833)
	tiles := Partition{space.FullRect(w.Dim)}
	o := newFedObs()
	var promoted atomic.Value // broker.Shard
	r, err := NewRouter(Config{
		Tiles:        tiles,
		Observer:     o.cb(),
		RetryBackoff: time.Millisecond,
		Resolve: func(int) broker.Shard {
			if s, ok := promoted.Load().(broker.Shard); ok {
				return s
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewFromWorld(w, train, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	dirL, dirF := t.TempDir(), t.TempDir()
	ldr, err := replicate.OpenLeader(dirL, e, replicate.LeaderConfig{
		AckTimeout: 5 * time.Second, Heartbeat: 10 * time.Millisecond,
		Health:  fastHealth(),
		Durable: durable.Options{CheckpointRecords: -1, CheckpointInterval: -1},
	}, broker.WithWorkers(2), broker.WithObserver(r.ShardObserver(0)))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ldr.Serve(ln)
	flw, err := replicate.StartFollower(replicate.FollowerConfig{
		Dir: dirF, Base: durable.BaseInfo{Hash: durable.HashBase(w.Subs), Count: int64(len(w.Subs))},
		Addr: ln.Addr().String(), Health: fastHealth(),
		ReadTimeout: 200 * time.Millisecond, Reconnect: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		flw.Close()
		ldr.Close()
		ln.Close()
	})
	if err := r.Attach(0, ldr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "initial catch-up", flw.Synced)

	evs := w.Events(200, 835)
	acked := make([]bool, len(evs))
	for i := 0; i < 60; i++ {
		if err := r.Publish(evs[i]); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		acked[i] = true
	}
	// Promote with the ex-leader still up: its next shipped frames draw
	// higher-epoch replies and every subsequent decide is fenced.
	e2, err := core.NewFromWorld(w, train, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := flw.Promote(e2, broker.WithWorkers(2), broker.WithObserver(r.ShardObserver(0)))
	if err != nil {
		t.Fatal(err)
	}
	promoted.Store(broker.Shard(b2))
	for i := 60; i < len(evs); i++ {
		if err := r.Publish(evs[i]); err != nil {
			t.Fatalf("publish %d across promotion: %v", i, err)
		}
		acked[i] = true
	}
	waitFor(t, 5*time.Second, "ex-leader fenced", ldr.Fenced)
	st := r.Stats()
	if st.Retries == 0 {
		t.Error("router recorded no retries across the fence")
	}
	if st.Resolves == 0 {
		t.Error("router never re-resolved to the promoted broker")
	}
	if err := r.Close(); err != nil { // closes b2, drains its deliveries
		t.Fatal(err)
	}
	ldr.Close() // drains the ex-leader's in-flight deliveries
	checkExactlyOnce(t, w, evs, acked, o)
}

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter(Config{}); err == nil {
		t.Error("NewRouter accepted an empty partition")
	}
	tiles := Partition{{{Lo: 0, Hi: 5}}} // deliberately bounded: points outside have no owner
	r, err := NewRouter(Config{Tiles: tiles, MaxRetries: 1, RetryBackoff: time.Millisecond, RetryTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Publish(workload.Event{Point: space.Point{7}}); err == nil {
		t.Error("publish outside every tile succeeded")
	}
	if _, err := r.SubscribeID(workload.Subscription{Owner: 1, Rect: space.Rect{{Lo: 8, Hi: 9}}}); err == nil {
		t.Error("subscribe outside every tile succeeded")
	}
	// No shard attached: the retry loop must bottom out on ErrNoShard.
	if err := r.Publish(workload.Event{Point: space.Point{3}}); !errors.Is(err, ErrNoShard) {
		t.Errorf("publish with no shard returned %v, want ErrNoShard", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(workload.Event{Point: space.Point{3}}); !errors.Is(err, ErrClosed) {
		t.Errorf("publish after close returned %v, want ErrClosed", err)
	}
}
