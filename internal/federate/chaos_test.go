package federate

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/replicate"
	"repro/internal/space"
	"repro/internal/workload"
)

// TestFederationChaosExactlyOnce is the federation chaos matrix in one
// deployment: a 4-shard federation whose shard 0 is a replicated pair,
// a concurrent publish storm, subscription churn racing the fan-out,
// boundary-straddling churn subscriptions — and a hard kill of the pair
// leader mid-storm with an automatic promotion the router must chase.
// The brute-force oracle over the full world then asserts exactly-once:
// every acked event delivered exactly once per interested node, zero
// duplicates anywhere, across both shard-0 incarnations.
func TestFederationChaosExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm in -short mode")
	}
	w := stockWorld(t, 841)
	train := w.Events(800, 843)
	tiles, err := Derive(w, train, 4)
	if err != nil {
		t.Fatal(err)
	}
	o := newFedObs()
	var promoted atomic.Value // broker.Shard, set once the standby is up
	r, err := NewRouter(Config{
		Tiles:        tiles,
		Observer:     o.cb(),
		RetryBackoff: time.Millisecond,
		Resolve: func(i int) broker.Shard {
			if i != 0 {
				return nil
			}
			if s, ok := promoted.Load().(broker.Shard); ok {
				return s
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Shard 0: a replicated pair whose leader's store dies mid-storm.
	// The crash injector models PROCESS death (store frozen, every
	// subsequent decide ErrCrashed) — not a network partition: a severed
	// but live ex-leader would keep acking solo under sequence numbers
	// the promoted mirror reuses, which no router can disambiguate.
	// The promotion engine is built up front from the same deterministic
	// inputs, so the promote goroutine does no fallible work beyond
	// Promote itself.
	crash := faults.NewCrashInjector(faults.CrashPlan{AtAppend: 120, Point: faults.CrashAfterAppend})
	e0, tw0 := tileEngine(t, w, tiles[0], train)
	e0b, _ := tileEngine(t, w, tiles[0], train)
	dirL, dirF := t.TempDir(), t.TempDir()
	ldr, err := replicate.OpenLeader(dirL, e0, replicate.LeaderConfig{
		AckTimeout: 5 * time.Second, Heartbeat: 10 * time.Millisecond,
		Health:  fastHealth(),
		Durable: durable.Options{CheckpointRecords: -1, CheckpointInterval: -1, Crash: crash},
	}, broker.WithWorkers(2), broker.WithObserver(r.ShardObserver(0)))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ldr.Serve(ln)
	flw, err := replicate.StartFollower(replicate.FollowerConfig{
		Dir: dirF, Base: durable.BaseInfo{Hash: durable.HashBase(tw0.Subs), Count: int64(len(tw0.Subs))},
		Addr: ln.Addr().String(), Health: fastHealth(),
		ReadTimeout: 200 * time.Millisecond, Reconnect: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		flw.Close()
		ldr.Close()
		ln.Close()
	})
	if err := r.Attach(0, ldr); err != nil {
		t.Fatal(err)
	}
	// Shards 1..3: plain in-process brokers over their tile worlds.
	for i := 1; i < len(tiles); i++ {
		e, _ := tileEngine(t, w, tiles[i], train)
		b, err := broker.New(e, broker.WithWorkers(2), broker.WithObserver(r.ShardObserver(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Attach(i, b); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { r.Close() })
	waitFor(t, 5*time.Second, "initial catch-up", flw.Synced)

	// Churn rectangles: small straddlers covering ≥ 2 tiles but NOT the
	// replicated shard 0 — slot numbers can be remapped when a durable
	// mirror recovers, so live (shard, slot) refs into the pre-failover
	// incarnation do not survive promotion (a production controller
	// re-registers; the router's ID table is incarnation-scoped).
	rng := rand.New(rand.NewSource(845))
	var churnRects []space.Rect
	var cover []int
	for len(churnRects) < 8 {
		ev := train[rng.Intn(len(train))]
		rect := make(space.Rect, w.Dim)
		for d := range rect {
			rect[d] = space.Interval{Lo: ev.Point[d] - 0.05, Hi: ev.Point[d] + 0.05}
		}
		cover = tiles.Covering(cover[:0], rect)
		touches0 := false
		for _, c := range cover {
			if c == 0 {
				touches0 = true
			}
		}
		if len(cover) >= 2 && !touches0 {
			churnRects = append(churnRects, rect)
		}
	}

	evs := w.Events(600, 847)
	acked := make([]bool, len(evs))
	var wg sync.WaitGroup

	// Two concurrent publishers so the leader crash lands mid-fan-out.
	publish := func(lo, hi int) {
		defer wg.Done()
		for i := lo; i < hi; i++ {
			if err := r.Publish(evs[i]); err != nil {
				t.Errorf("publish %d: %v", i, err)
				return
			}
			acked[i] = true
		}
	}
	wg.Add(2)
	go publish(0, len(evs)/2)
	go publish(len(evs)/2, len(evs))

	// Churn racing the fan-out: ≥ 100 subscribe/unsubscribe cycles, each
	// a pair of decision-snapshot swaps on every covered shard.
	churn := make(chan int, 1)
	go func() {
		n := 0
		for n < 100 {
			rect := churnRects[n%len(churnRects)]
			id, err := r.SubscribeID(workload.Subscription{Owner: 500, Rect: rect})
			if err != nil {
				t.Errorf("churn subscribe %d: %v", n, err)
				break
			}
			if err := r.UnsubscribeID(id); err != nil {
				t.Errorf("churn unsubscribe %d: %v", n, err)
				break
			}
			n++
		}
		churn <- n
	}()

	// The failover: once the crash freezes the leader mid-fan-out, the
	// standby's breaker declares it dead; promote and let the router's
	// crashed-decide retries re-resolve to b2.
	promoter := make(chan struct{})
	go func() {
		defer close(promoter)
		<-flw.LeaderDead()
		b2, err := flw.Promote(e0b, broker.WithWorkers(2), broker.WithObserver(r.ShardObserver(0)))
		if err != nil {
			t.Errorf("promote: %v", err)
			return
		}
		promoted.Store(broker.Shard(b2))
	}()

	wg.Wait()
	<-promoter
	if !crash.Dead() {
		t.Error("crash plan never fired; the storm missed shard 0 entirely")
	}
	if n := <-churn; n < 100 {
		t.Errorf("churn completed %d cycles, want ≥ 100", n)
	}
	if _, ok := promoted.Load().(broker.Shard); !ok {
		t.Fatal("standby never promoted")
	}
	st := r.Stats()
	if st.Retries == 0 {
		t.Error("storm crossed a leader kill without a single router retry")
	}
	if st.Resolves == 0 {
		t.Error("router never re-resolved shard 0 to the promoted standby")
	}
	if err := r.Close(); err != nil { // drains shards 1..3 and b2
		t.Fatal(err)
	}
	ldr.Close() // already killed; releases resources
	checkExactlyOnce(t, w, evs, acked, o)
	t.Logf("chaos stats: %+v", st)
}
