package federate

import (
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

// TestRemoteShardOverWire runs a mixed federation — shard 0 a remote
// pubsub server reached over loopback TCP, shard 1 an in-process broker
// — and proves the wire v2 widenings carry the federation protocol end
// to end: PubAck.Seq feeds the router's seq translation (Unmapped must
// stay zero) and Deliver.Node attributes pumped deliveries for dedup,
// including a straddler subscribed on both sides of the cut.
func TestRemoteShardOverWire(t *testing.T) {
	g := stockWorld(t, 851).Graph
	tiles := Partition{
		{{Lo: inf(-1), Hi: 5}},
		{{Lo: 5, Hi: inf(1)}},
	}
	o := newFedObs()
	r, err := NewRouter(Config{Tiles: tiles, Observer: o.cb()})
	if err != nil {
		t.Fatal(err)
	}
	train := mkEvents(0.3, 2.5, 6.5, 9.5, 1.5, 4.5, 5.5)

	// Shard 0: a broker behind a transport server, dialled by the router.
	w0 := miniWorld(t, g, space.Interval{Lo: 0, Hi: 0.5}, space.Interval{Lo: 2, Hi: 3})
	srv := transport.NewServer(transport.Config{})
	b0, err := broker.New(miniEngine(t, w0, train), broker.WithWorkers(1), broker.WithObserver(srv.Dispatch))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln, b0) }()
	t.Cleanup(func() {
		srv.Close()
		b0.Close()
		<-serveErr
	})
	if _, err := AttachRemote(r, 0, transport.ClientConfig{Addr: ln.Addr().String()}); err != nil {
		t.Fatal(err)
	}

	// Shard 1: plain in-process broker.
	w1 := miniWorld(t, g, space.Interval{Lo: 6, Hi: 7}, space.Interval{Lo: 9, Hi: 10})
	b1, err := broker.New(miniEngine(t, w1, train), broker.WithWorkers(1), broker.WithObserver(r.ShardObserver(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(1, b1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })

	idA, err := r.SubscribeID(workload.Subscription{Owner: 300, Rect: space.Rect{{Lo: 1, Hi: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	idS, err := r.SubscribeID(workload.Subscription{Owner: 301, Rect: space.Rect{{Lo: 4, Hi: 6}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Refs(idS)); got != 2 {
		t.Fatalf("straddler registered on %d shards, want 2 (remote + local)", got)
	}

	evRemote := workload.Event{Pub: 0, Point: space.Point{1.5}} // remote shard, sub A
	evMidL := workload.Event{Pub: 0, Point: space.Point{4.5}}   // remote shard, straddler
	evMidR := workload.Event{Pub: 0, Point: space.Point{5.5}}   // local shard, straddler
	for _, ev := range []workload.Event{evRemote, evMidL, evMidR} {
		if err := r.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "wire deliveries", func() bool {
		return o.count(300, evRemote) >= 1 && o.count(301, evMidL) >= 1 && o.count(301, evMidR) >= 1
	})
	time.Sleep(50 * time.Millisecond)
	for _, c := range []struct {
		node int
		ev   workload.Event
	}{{300, evRemote}, {301, evMidL}, {301, evMidR}} {
		if n := o.count(topology.NodeID(c.node), c.ev); n != 1 {
			t.Errorf("node %d got event %v %d times, want 1", c.node, c.ev.Point, n)
		}
	}
	if st := r.Stats(); st.Unmapped != 0 {
		t.Errorf("Unmapped = %d: PubAck seqs did not reach the translation table", st.Unmapped)
	}

	// Unsubscribe over the wire, then prove the remote slot is gone.
	if err := r.UnsubscribeID(idA); err != nil {
		t.Fatal(err)
	}
	evAgain := workload.Event{Pub: 0, Point: space.Point{1.7}}
	if err := r.Publish(evAgain); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if n := o.count(300, evAgain); n != 0 {
		t.Errorf("unsubscribed remote slot still delivered %d copies", n)
	}
}
