package federate

import (
	"math"
	"sync"
)

// windowEmpty marks an unused ring slot in both window types. Global
// seqs start at 0 and synthetic replay keys are bit-complements of
// non-negative values, so MinInt64 collides with neither.
const windowEmpty = math.MinInt64

// dedupWindow remembers the last N keys admitted for one subscriber
// node and rejects re-admissions. Bounded: when the ring wraps, the
// oldest key is forgotten (a duplicate older than the window would slip
// through, so the window must exceed the deliveries a shard can have in
// flight — see Config.DedupWindow). Callers hold the router's dedup
// lock; the window itself is not concurrency-safe.
type dedupWindow struct {
	seen map[int64]struct{}
	ring []int64
	next int
}

func newDedupWindow(n int) *dedupWindow {
	w := &dedupWindow{
		seen: make(map[int64]struct{}, n),
		ring: make([]int64, n),
	}
	for i := range w.ring {
		w.ring[i] = windowEmpty
	}
	return w
}

// admit reports whether key is new, recording it if so.
func (w *dedupWindow) admit(key int64) bool {
	if _, dup := w.seen[key]; dup {
		return false
	}
	if old := w.ring[w.next]; old != windowEmpty {
		delete(w.seen, old)
	}
	w.ring[w.next] = key
	w.next = (w.next + 1) % len(w.ring)
	w.seen[key] = struct{}{}
	return true
}

// seqMap translates one shard's local publication seqs to router-global
// seqs. Bounded the same way as dedupWindow. A shard's deliveries race
// the router's own bookkeeping — the broker can deliver an event before
// the DecideSeq call that published it returns — so the router's Feed
// path polls a missing entry briefly before declaring it unmapped.
type seqMap struct {
	mu   sync.Mutex
	m    map[int64]int64
	ring []int64
	next int
}

func newSeqMap(n int) *seqMap {
	s := &seqMap{
		m:    make(map[int64]int64, n),
		ring: make([]int64, n),
	}
	for i := range s.ring {
		s.ring[i] = windowEmpty
	}
	return s
}

// record stores local→global.
func (s *seqMap) record(local, global int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[local]; !ok {
		if old := s.ring[s.next]; old != windowEmpty {
			delete(s.m, old)
		}
		s.ring[s.next] = local
		s.next = (s.next + 1) % len(s.ring)
	}
	s.m[local] = global
}

// lookup returns the global seq recorded for local, without waiting.
func (s *seqMap) lookup(local int64) (int64, bool) {
	s.mu.Lock()
	g, ok := s.m[local]
	s.mu.Unlock()
	return g, ok
}
