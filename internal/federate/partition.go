package federate

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/space"
	"repro/internal/workload"
)

// Partition is an ordered list of shard tiles. A router owns one shard
// per tile; tile i is shard i's responsibility rectangle. Derive
// produces disjoint tiles whose union is all of Ω (outermost tiles are
// unbounded, so no event point can fall between the cracks), but the
// Router accepts any tile list whose rectangles jointly cover the
// workload — including overlapping ones.
type Partition []space.Rect

// Dim returns the tiles' dimensionality.
func (p Partition) Dim() int {
	if len(p) == 0 {
		return 0
	}
	return len(p[0])
}

// Validate checks the tile list is usable by a router: non-empty, every
// tile non-empty and of equal dimensionality.
func (p Partition) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("federate: partition has no tiles")
	}
	dim := len(p[0])
	for i, t := range p {
		if len(t) != dim {
			return fmt.Errorf("federate: tile %d has dim %d, want %d", i, len(t), dim)
		}
		for d, iv := range t {
			if iv.Empty() {
				return fmt.Errorf("federate: tile %d is empty along dim %d", i, d)
			}
		}
	}
	return nil
}

// Owners appends to dst the indices of tiles containing point pt.
func (p Partition) Owners(dst []int, pt space.Point) []int {
	for i, t := range p {
		if t.Contains(pt) {
			dst = append(dst, i)
		}
	}
	return dst
}

// Covering appends to dst the indices of tiles intersecting rect — the
// shards a subscription with that rectangle must be registered on.
func (p Partition) Covering(dst []int, rect space.Rect) []int {
	for i, t := range p {
		if t.Intersects(rect) {
			dst = append(dst, i)
		}
	}
	return dst
}

// TileWorld restricts w to the subscriptions intersecting tile — the
// world one shard serves. Deployments derive the partition once from
// the full world, then build each shard's engine over its tile world
// (with the shared training stream, so clustering statistics agree).
func TileWorld(w *workload.World, tile space.Rect) (*workload.World, error) {
	var subs []workload.Subscription
	for _, s := range w.Subs {
		if s.Rect.Intersects(tile) {
			subs = append(subs, s)
		}
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("federate: tile %v intersects no subscriptions", tile)
	}
	return workload.NewCustomWorld(w.Graph, w.Axes, subs)
}

// Derive splits the workload's event space into `shards` disjoint
// rectangles of roughly equal subscriber load, k-d-tree style: it
// rasterises the subscriptions onto the workload grid with the
// clustering framework (the same per-cell membership vectors and
// empirical publication probabilities the group builder uses), weights
// every grid cell by its popularity rating r(a) = p(a)·|s(a)|, and then
// recursively halves the cell box along the axis boundary that best
// balances the weight. shards must be a power of two ≥ 1.
//
// Splits land only on grid-cell boundaries, and the outermost tiles are
// extended to ±∞, so the tiles exactly tile Ω; a subscription or event
// outside the grid's trained bounds still has an owner.
func Derive(w *workload.World, train []workload.Event, shards int) (Partition, error) {
	if shards < 1 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("federate: shard count %d is not a power of two ≥ 1", shards)
	}
	dim := len(w.Axes)
	if dim == 0 {
		return nil, fmt.Errorf("federate: workload has no axes")
	}
	if shards == 1 {
		return Partition{space.FullRect(dim)}, nil
	}
	grid, err := space.NewGrid(w.Axes)
	if err != nil {
		return nil, err
	}
	// Budget 0 would truncate to the framework default; the split wants
	// the full weight field, so ask for every cell.
	in, err := cluster.BuildInput(w, grid, train, grid.NumCells())
	if err != nil {
		return nil, err
	}
	// Spread each hyper-cell's rating evenly over its grid cells, plus a
	// small uniform prior so regions with no trained weight still split
	// geometrically instead of collapsing to zero-width choices.
	weight := make([]float64, grid.NumCells())
	for i := range weight {
		weight[i] = 1e-9
	}
	for i := range in.Cells {
		h := &in.Cells[i]
		per := h.Rating() / float64(len(h.Cells))
		for _, id := range h.Cells {
			weight[int(id)] += per
		}
	}

	axes := w.Axes
	lo := make([]int, dim)
	hi := make([]int, dim) // inclusive cell-index bounds per dimension
	for d := range hi {
		hi[d] = axes[d].Cells - 1
	}
	var out Partition
	var split func(lo, hi []int, n int)
	split = func(lo, hi []int, n int) {
		if n == 1 {
			out = append(out, tileOf(axes, lo, hi))
			return
		}
		d, cut := bestCut(grid, weight, lo, hi)
		leftHi := append([]int(nil), hi...)
		leftHi[d] = cut - 1
		rightLo := append([]int(nil), lo...)
		rightLo[d] = cut
		split(lo, leftHi, n/2)
		split(rightLo, hi, n/2)
	}
	split(lo, hi, shards)
	return out, nil
}

// bestCut picks the axis d and boundary index cut ∈ (lo[d], hi[d]] that
// most evenly halves the region's weight. Ties (and weightless regions)
// fall back to halving the axis with the most cells.
func bestCut(grid *space.Grid, weight []float64, lo, hi []int) (axis, cut int) {
	axes := grid.Axes()
	bestScore := math.Inf(1)
	axis, cut = -1, -1
	for d := range axes {
		if hi[d] <= lo[d] {
			continue // single cell wide: nothing to cut
		}
		marg := marginal(grid, weight, lo, hi, d)
		total := 0.0
		for _, v := range marg {
			total += v
		}
		left := 0.0
		for i := 0; i < len(marg)-1; i++ {
			left += marg[i]
			imbalance := math.Abs(2*left - total)
			// Prefer cuts near the index midpoint on near-ties, so a flat
			// weight field degrades to a plain midpoint k-d split.
			mid := float64(len(marg)) / 2
			score := imbalance + 1e-12*math.Abs(float64(i+1)-mid)
			if score < bestScore {
				bestScore = score
				axis, cut = d, lo[d]+i+1
			}
		}
	}
	if axis < 0 {
		// Region is one cell in every splittable dimension; halve the
		// widest axis anyway (duplicate-index tiles stay non-empty only
		// when the caller over-shards a tiny grid — Validate catches it).
		widest := 0
		for d := 1; d < len(axes); d++ {
			if hi[d]-lo[d] > hi[widest]-lo[widest] {
				widest = d
			}
		}
		return widest, lo[widest] + (hi[widest]-lo[widest]+1)/2
	}
	return axis, cut
}

// marginal sums the region's cell weights along axis d, producing one
// bucket per cell index in [lo[d], hi[d]].
func marginal(grid *space.Grid, weight []float64, lo, hi []int, d int) []float64 {
	out := make([]float64, hi[d]-lo[d]+1)
	coords := append([]int(nil), lo...)
	axes := grid.Axes()
	for {
		id := 0
		for k := range axes {
			id = id*axes[k].Cells + coords[k]
		}
		out[coords[d]-lo[d]] += weight[id]
		// Odometer over the region, last dimension fastest.
		k := len(coords) - 1
		for k >= 0 {
			coords[k]++
			if coords[k] <= hi[k] {
				break
			}
			coords[k] = lo[k]
			k--
		}
		if k < 0 {
			return out
		}
	}
}

// tileOf converts inclusive cell-index bounds into a tile rectangle.
// Interior edges land exactly on grid boundaries; edges touching the
// grid border extend to ±∞ so the partition covers all of Ω.
func tileOf(axes []space.Axis, lo, hi []int) space.Rect {
	r := make(space.Rect, len(axes))
	for d, a := range axes {
		w := (a.Hi - a.Lo) / float64(a.Cells)
		iv := space.Interval{
			Lo: a.Lo + float64(lo[d])*w,
			Hi: a.Lo + float64(hi[d]+1)*w,
		}
		if lo[d] == 0 {
			iv.Lo = math.Inf(-1)
		}
		if hi[d] == a.Cells-1 {
			iv.Hi = math.Inf(1)
		}
		r[d] = iv
	}
	return r
}
