package space

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPredicateMatches(t *testing.T) {
	p := Predicate{Span(0, 2), Span(5, 7)}
	cases := []struct {
		x    float64
		want bool
	}{
		{1, true}, {2, true}, {3, false}, {5, false}, {5.5, true}, {7, true}, {8, false},
	}
	for _, c := range cases {
		if got := p.Matches(c.x); got != c.want {
			t.Errorf("Matches(%v) = %v", c.x, got)
		}
	}
	if (Predicate{}).Matches(1) {
		t.Error("empty predicate matched")
	}
}

func TestNormalizeMerges(t *testing.T) {
	p := Predicate{Span(5, 7), Span(0, 2), Span(2, 4), Span(6, 6.5), Span(9, 9)}
	n := p.Normalize()
	// (0,2] ∪ (2,4] merge to (0,4]; (5,7] absorbs (6,6.5]; (9,9] is empty.
	if len(n) != 2 {
		t.Fatalf("Normalize = %v", n)
	}
	if n[0] != Span(0, 4) || n[1] != Span(5, 7) {
		t.Fatalf("Normalize = %v", n)
	}
	if got := (Predicate{Span(3, 3)}).Normalize(); got != nil {
		t.Errorf("all-empty normalize = %v", got)
	}
}

func TestNormalizeUnbounded(t *testing.T) {
	p := Predicate{LeftOf(0), RightOf(10), Span(-5, 3)}
	n := p.Normalize()
	if len(n) != 2 {
		t.Fatalf("Normalize = %v", n)
	}
	if n[0] != LeftOf(3) || n[1] != RightOf(10) {
		t.Fatalf("Normalize = %v", n)
	}
}

func TestDecomposeBasic(t *testing.T) {
	// "blue chip" names {(0,1], (4,5]} × price (90,110] → 2 rectangles.
	rects, err := Decompose([]Predicate{
		{Span(0, 1), Span(4, 5)},
		{Span(90, 110)},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 2 {
		t.Fatalf("rects = %v", rects)
	}
	for _, r := range rects {
		if r.Dim() != 2 {
			t.Fatal("wrong dim")
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(nil, 0); err == nil {
		t.Error("no predicates accepted")
	}
	if _, err := Decompose([]Predicate{{Span(1, 1)}}, 0); err == nil {
		t.Error("unsatisfiable predicate accepted")
	}
	big := Predicate{}
	for i := 0; i < 100; i++ {
		big = append(big, Span(float64(3*i), float64(3*i+1)))
	}
	if _, err := Decompose([]Predicate{big, big, big}, 1000); err == nil {
		t.Error("oversized decomposition accepted")
	}
}

func TestDecomposeDisjointAndEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	law := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		dims := 1 + rr.Intn(3)
		preds := make([]Predicate, dims)
		for d := range preds {
			k := 1 + rr.Intn(3)
			for i := 0; i < k; i++ {
				lo := rr.Float64() * 20
				preds[d] = append(preds[d], Span(lo, lo+rr.Float64()*5))
			}
		}
		rects, err := Decompose(preds, 0)
		if err != nil {
			// Only acceptable when some predicate is empty — Span is never
			// empty here (length > 0 w.p. 1).
			return false
		}
		// Disjoint.
		for i := range rects {
			for j := i + 1; j < len(rects); j++ {
				if rects[i].Intersects(rects[j]) {
					return false
				}
			}
		}
		// Equivalent on random points.
		for trial := 0; trial < 50; trial++ {
			p := make(Point, dims)
			for d := range p {
				p[d] = r.Float64() * 25
			}
			inPred := true
			for d := range preds {
				if !preds[d].Matches(p[d]) {
					inPred = false
					break
				}
			}
			inRects := false
			for _, rc := range rects {
				if rc.Contains(p) {
					inRects = true
					break
				}
			}
			if inPred != inRects {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
