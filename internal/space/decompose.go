package space

import "fmt"

// Predicate is one attribute's interest as a union of intervals — the
// general range-based predicate of the paper's §1 ("each predicate …
// composed of intervals in the underlying domain"). A predicate with no
// intervals matches nothing.
type Predicate []Interval

// Matches reports whether x falls in any of the predicate's intervals.
func (p Predicate) Matches(x float64) bool {
	for _, iv := range p {
		if iv.Contains(x) {
			return true
		}
	}
	return false
}

// Normalize sorts and merges overlapping or touching intervals (half-open
// semantics make touching intervals mergeable exactly), dropping empties.
func (p Predicate) Normalize() Predicate {
	var ivs []Interval
	for _, iv := range p {
		if !iv.Empty() {
			ivs = append(ivs, iv)
		}
	}
	if len(ivs) == 0 {
		return nil
	}
	// Insertion sort by Lo: predicates are tiny.
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].Lo < ivs[j-1].Lo; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	out := Predicate{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi { // overlap or exact touch: (a,b] ∪ (b,c] = (a,c]
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// Decompose expands a conjunction of multi-interval predicates (one per
// dimension) into the equivalent union of aligned rectangles — the
// decomposition the paper describes in §1: "By decomposing a subscription
// with multiple such ranges into multiple subscriptions consisting of
// single ranges we can see that it is sufficient only to consider
// intervals, albeit at a cost of more subscriptions."
//
// Predicates are normalised first, so the returned rectangles are pairwise
// disjoint and their union matches exactly the points matching every
// predicate. An error is returned when any predicate is unsatisfiable or
// the expansion would exceed maxRects.
func Decompose(preds []Predicate, maxRects int) ([]Rect, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("space: no predicates")
	}
	if maxRects <= 0 {
		maxRects = 1 << 16
	}
	norm := make([]Predicate, len(preds))
	total := 1
	for d, p := range preds {
		np := p.Normalize()
		if len(np) == 0 {
			return nil, fmt.Errorf("space: predicate %d matches nothing", d)
		}
		if total > maxRects/len(np) {
			return nil, fmt.Errorf("space: decomposition exceeds %d rectangles", maxRects)
		}
		total *= len(np)
		norm[d] = np
	}
	out := make([]Rect, 0, total)
	idx := make([]int, len(norm))
	for {
		r := make(Rect, len(norm))
		for d := range norm {
			r[d] = norm[d][idx[d]]
		}
		out = append(out, r)
		d := len(idx) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(norm[d]) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			return out, nil
		}
	}
}
