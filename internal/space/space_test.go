package space

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalContains(t *testing.T) {
	iv := Span(2, 5)
	cases := []struct {
		x    float64
		want bool
	}{
		{2, false}, // half-open on the left
		{2.0001, true},
		{5, true}, // closed on the right
		{5.0001, false},
		{1, false},
		{3, true},
	}
	for _, c := range cases {
		if got := iv.Contains(c.x); got != c.want {
			t.Errorf("(2,5].Contains(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestUnboundedIntervals(t *testing.T) {
	if !Full().Contains(1e300) || !Full().Contains(-1e300) {
		t.Error("Full does not contain extremes")
	}
	if l := LeftOf(3); !l.Contains(-100) || !l.Contains(3) || l.Contains(3.1) {
		t.Error("LeftOf(3) misbehaves")
	}
	if r := RightOf(3); r.Contains(3) || !r.Contains(3.1) || !r.Contains(1e9) {
		t.Error("RightOf(3) misbehaves")
	}
	if Full().Empty() {
		t.Error("Full is empty")
	}
	if !Full().Intersects(Span(0, 1)) {
		t.Error("Full does not intersect finite span")
	}
}

func TestIntervalEmpty(t *testing.T) {
	if !Span(3, 3).Empty() {
		t.Error("(3,3] not empty")
	}
	if !Span(5, 2).Empty() {
		t.Error("(5,2] not empty")
	}
	if Span(2, 5).Empty() {
		t.Error("(2,5] empty")
	}
	if Span(3, 3).Contains(3) {
		t.Error("(3,3] contains 3")
	}
}

func TestIntervalIntersect(t *testing.T) {
	a, b := Span(0, 5), Span(3, 8)
	got, ok := a.Intersect(b)
	if !ok || got != Span(3, 5) {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	// Touching at a point: (0,3] ∩ (3,8] is empty under half-open semantics.
	if _, ok := Span(0, 3).Intersect(Span(3, 8)); ok {
		t.Error("touching half-open intervals should not intersect")
	}
	if Span(0, 3).Intersects(Span(3, 8)) {
		t.Error("Intersects disagrees with Intersect")
	}
	if _, ok := Span(0, 1).Intersect(Span(2, 3)); ok {
		t.Error("disjoint intervals intersect")
	}
}

func TestIntervalWidth(t *testing.T) {
	if w := Span(2, 5).Width(); w != 3 {
		t.Errorf("Width = %v", w)
	}
	if w := Span(5, 2).Width(); w != 0 {
		t.Errorf("empty Width = %v", w)
	}
	if w := Full().Width(); !math.IsInf(w, 1) {
		t.Errorf("Full Width = %v", w)
	}
	if Full().Bounded() || !Span(0, 1).Bounded() {
		t.Error("Bounded wrong")
	}
}

func TestIntervalString(t *testing.T) {
	if s := Span(1, 2).String(); s != "(1, 2]" {
		t.Errorf("String = %q", s)
	}
	if s := Full().String(); s != "(-inf, +inf]" {
		t.Errorf("String = %q", s)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Span(0, 10), Full(), LeftOf(5)}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 100, 4}, true},
		{Point{0, 0, 0}, false}, // dim0 boundary excluded
		{Point{10, 0, 5}, true}, // closed right ends
		{Point{5, 0, 5.1}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Rect{Full()}.Contains(Point{1, 2})
}

func TestRectIntersect(t *testing.T) {
	a := Rect{Span(0, 5), Span(0, 5)}
	b := Rect{Span(3, 8), Span(-2, 2)}
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected intersection")
	}
	if !got.Equal(Rect{Span(3, 5), Span(0, 2)}) {
		t.Errorf("Intersect = %v", got)
	}
	c := Rect{Span(6, 8), Span(0, 5)}
	if _, ok := a.Intersect(c); ok {
		t.Error("disjoint rects intersect")
	}
	if a.Intersects(c) {
		t.Error("Intersects disagrees")
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := Rect{Span(0, 10), Full()}
	inner := Rect{Span(2, 5), Span(-1, 1)}
	if !outer.ContainsRect(inner) {
		t.Error("outer should contain inner")
	}
	if inner.ContainsRect(outer) {
		t.Error("inner should not contain outer")
	}
}

func TestRectCloneEqual(t *testing.T) {
	a := Rect{Span(0, 1), Span(2, 3)}
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone not equal")
	}
	c[0] = Span(9, 10)
	if a.Equal(c) {
		t.Error("mutating clone affected equality")
	}
	if a.Equal(Rect{Span(0, 1)}) {
		t.Error("different dims equal")
	}
}

func TestFullRect(t *testing.T) {
	r := FullRect(4)
	if r.Dim() != 4 || r.Empty() {
		t.Fatal("FullRect wrong")
	}
	if !r.Contains(Point{1e9, -1e9, 0, 42}) {
		t.Error("FullRect does not contain point")
	}
}

func TestGridBasics(t *testing.T) {
	g, err := UniformGrid(2, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 25 || g.Dim() != 2 {
		t.Fatalf("NumCells=%d Dim=%d", g.NumCells(), g.Dim())
	}
	b := g.Bounds()
	if !b.Equal(Rect{Span(0, 10), Span(0, 10)}) {
		t.Errorf("Bounds = %v", b)
	}
}

func TestGridInvalid(t *testing.T) {
	if _, err := NewGrid(nil); err == nil {
		t.Error("nil axes accepted")
	}
	if _, err := NewGrid([]Axis{{Lo: 0, Hi: 10, Cells: 0}}); err == nil {
		t.Error("zero cells accepted")
	}
	if _, err := NewGrid([]Axis{{Lo: 5, Hi: 5, Cells: 2}}); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewGrid([]Axis{{Lo: 0, Hi: math.Inf(1), Cells: 2}}); err == nil {
		t.Error("infinite range accepted")
	}
	huge := make([]Axis, 8)
	for i := range huge {
		huge[i] = Axis{Lo: 0, Hi: 1, Cells: 1000}
	}
	if _, err := NewGrid(huge); err == nil {
		t.Error("overflowing grid accepted")
	}
}

func TestGridLocate(t *testing.T) {
	g, _ := UniformGrid(1, 0, 10, 5) // cells (0,2], (2,4], ...
	cases := []struct {
		x    float64
		want int
		ok   bool
	}{
		{0, 0, false}, // on open lower bound: outside
		{0.5, 0, true},
		{2, 0, true}, // boundary belongs to the left cell
		{2.1, 1, true},
		{10, 4, true},
		{10.1, 0, false},
		{-1, 0, false},
	}
	for _, c := range cases {
		id, ok := g.Locate(Point{c.x})
		if ok != c.ok || (ok && int(id) != c.want) {
			t.Errorf("Locate(%v) = %d,%v want %d,%v", c.x, id, ok, c.want, c.ok)
		}
	}
}

func TestGridLocateMultiDim(t *testing.T) {
	g, _ := NewGrid([]Axis{{Lo: 0, Hi: 4, Cells: 2}, {Lo: 0, Hi: 9, Cells: 3}})
	id, ok := g.Locate(Point{3, 7})
	if !ok {
		t.Fatal("Locate failed")
	}
	// dim0 index 1, dim1 index 2 → 1*3+2 = 5
	if id != 5 {
		t.Errorf("id = %d, want 5", id)
	}
	coords := g.Coords(id)
	if coords[0] != 1 || coords[1] != 2 {
		t.Errorf("Coords = %v", coords)
	}
}

func TestGridCellRectRoundTrip(t *testing.T) {
	g, _ := NewGrid([]Axis{{Lo: 0, Hi: 20, Cells: 7}, {Lo: -5, Hi: 5, Cells: 3}})
	for id := CellID(0); int(id) < g.NumCells(); id++ {
		c := g.CellCenter(id)
		got, ok := g.Locate(c)
		if !ok || got != id {
			t.Fatalf("center of cell %d located at %d (ok=%v)", id, got, ok)
		}
		if !g.CellRect(id).Contains(c) {
			t.Fatalf("cell %d rect does not contain its center", id)
		}
	}
}

func TestGridCoordsPanics(t *testing.T) {
	g, _ := UniformGrid(1, 0, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	g.Coords(2)
}

func TestCellsInMatchesBruteForce(t *testing.T) {
	g, _ := NewGrid([]Axis{{Lo: 0, Hi: 10, Cells: 5}, {Lo: 0, Hi: 10, Cells: 4}})
	rects := []Rect{
		{Span(1, 3), Span(2, 9)},
		{Span(0, 10), Span(0, 10)},
		{Span(-5, 0.1), Span(9.9, 30)},
		{LeftOf(4), RightOf(6)},
		{Full(), Full()},
		{Span(2, 2), Span(0, 10)},         // empty in dim0
		{Span(11, 12), Span(0, 10)},       // outside
		{Span(2, 2.0000001), Span(0, 10)}, // sliver
	}
	for _, r := range rects {
		got := map[CellID]bool{}
		for _, id := range g.CellsIn(r) {
			got[id] = true
		}
		for id := CellID(0); int(id) < g.NumCells(); id++ {
			want := g.CellRect(id).Intersects(r)
			if got[id] != want {
				t.Errorf("rect %v cell %d: got %v want %v (cell rect %v)", r, id, got[id], want, g.CellRect(id))
			}
		}
	}
}

func TestQuickLocateConsistentWithCellRect(t *testing.T) {
	g, _ := NewGrid([]Axis{{Lo: 0, Hi: 20, Cells: 9}, {Lo: 0, Hi: 20, Cells: 6}})
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := Point{r.Float64()*24 - 2, r.Float64()*24 - 2}
		id, ok := g.Locate(p)
		if !ok {
			// Must genuinely be outside bounds.
			return !g.Bounds().Contains(p)
		}
		return g.CellRect(id).Contains(p)
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCellsInContainsLocate(t *testing.T) {
	g, _ := NewGrid([]Axis{{Lo: 0, Hi: 20, Cells: 10}})
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lo := r.Float64() * 20
		hi := lo + r.Float64()*10
		rect := Rect{Span(lo, hi)}
		p := Point{lo + (hi-lo)*r.Float64()}
		if !rect.Contains(p) {
			return true // point landed on open edge; nothing to check
		}
		id, ok := g.Locate(p)
		if !ok {
			return true // outside grid
		}
		for _, c := range g.CellsIn(rect) {
			if c == id {
				return true
			}
		}
		return false
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectionCommutes(t *testing.T) {
	law := func(a0, a1, b0, b1 float64) bool {
		a := Span(math.Min(a0, a1), math.Max(a0, a1))
		b := Span(math.Min(b0, b1), math.Max(b0, b1))
		x, okx := a.Intersect(b)
		y, oky := b.Intersect(a)
		if okx != oky {
			return false
		}
		return !okx || x == y
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
