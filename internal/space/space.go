// Package space models the publication event space Ω of the ICDCS 2002
// paper: events are points in R^N, subscriptions are axis-aligned rectangles
// whose sides are half-open intervals (lo, hi], possibly unbounded. The
// half-open convention is the paper's: it lets adjacent intervals tile the
// line with no overlap and no gap.
package space

import (
	"fmt"
	"math"
	"strings"
)

// Interval is a half-open interval (Lo, Hi]. Lo may be -Inf and Hi may be
// +Inf. An interval with Lo >= Hi is empty.
type Interval struct {
	Lo, Hi float64
}

// Full returns the unbounded interval (-Inf, +Inf].
func Full() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(+1)}
}

// LeftOf returns the left-unbounded interval (-Inf, hi].
func LeftOf(hi float64) Interval { return Interval{Lo: math.Inf(-1), Hi: hi} }

// RightOf returns the right-unbounded interval (lo, +Inf].
func RightOf(lo float64) Interval { return Interval{Lo: lo, Hi: math.Inf(+1)} }

// Span returns the interval (lo, hi].
func Span(lo, hi float64) Interval { return Interval{Lo: lo, Hi: hi} }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return !(iv.Lo < iv.Hi) }

// Contains reports whether x ∈ (Lo, Hi].
func (iv Interval) Contains(x float64) bool { return x > iv.Lo && x <= iv.Hi }

// Intersects reports whether iv ∩ o is non-empty.
func (iv Interval) Intersects(o Interval) bool {
	return math.Max(iv.Lo, o.Lo) < math.Min(iv.Hi, o.Hi)
}

// Intersect returns iv ∩ o and whether it is non-empty.
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	out := Interval{Lo: math.Max(iv.Lo, o.Lo), Hi: math.Min(iv.Hi, o.Hi)}
	return out, !out.Empty()
}

// Width returns Hi - Lo (possibly +Inf), or 0 for empty intervals.
func (iv Interval) Width() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Bounded reports whether both endpoints are finite.
func (iv Interval) Bounded() bool {
	return !math.IsInf(iv.Lo, 0) && !math.IsInf(iv.Hi, 0)
}

// String renders the interval in the paper's (lo, hi] notation.
func (iv Interval) String() string {
	lo := "-inf"
	if !math.IsInf(iv.Lo, -1) {
		lo = fmt.Sprintf("%g", iv.Lo)
	}
	hi := "+inf"
	if !math.IsInf(iv.Hi, +1) {
		hi = fmt.Sprintf("%g", iv.Hi)
	}
	return fmt.Sprintf("(%s, %s]", lo, hi)
}

// Point is a published event: one coordinate per attribute dimension.
type Point []float64

// Rect is an axis-aligned rectangle, one half-open interval per dimension.
// Subscriptions and multicast-group regions are Rects.
type Rect []Interval

// FullRect returns the rectangle covering all of R^dim.
func FullRect(dim int) Rect {
	r := make(Rect, dim)
	for i := range r {
		r[i] = Full()
	}
	return r
}

// Dim returns the dimensionality.
func (r Rect) Dim() int { return len(r) }

// Empty reports whether any side is empty.
func (r Rect) Empty() bool {
	for _, iv := range r {
		if iv.Empty() {
			return true
		}
	}
	return false
}

// Contains reports whether the point lies inside the rectangle. Dimensions
// must match.
func (r Rect) Contains(p Point) bool {
	if len(r) != len(p) {
		panic(fmt.Sprintf("space: rect dim %d vs point dim %d", len(r), len(p)))
	}
	for i, iv := range r {
		if !iv.Contains(p[i]) {
			return false
		}
	}
	return true
}

// Intersects reports whether r ∩ o is non-empty.
func (r Rect) Intersects(o Rect) bool {
	if len(r) != len(o) {
		panic(fmt.Sprintf("space: rect dims %d vs %d", len(r), len(o)))
	}
	for i, iv := range r {
		if !iv.Intersects(o[i]) {
			return false
		}
	}
	return true
}

// Intersect returns r ∩ o and whether it is non-empty.
func (r Rect) Intersect(o Rect) (Rect, bool) {
	if len(r) != len(o) {
		panic(fmt.Sprintf("space: rect dims %d vs %d", len(r), len(o)))
	}
	out := make(Rect, len(r))
	for i := range r {
		iv, ok := r[i].Intersect(o[i])
		if !ok {
			return nil, false
		}
		out[i] = iv
	}
	return out, true
}

// ContainsRect reports whether o ⊆ r.
func (r Rect) ContainsRect(o Rect) bool {
	if len(r) != len(o) {
		panic(fmt.Sprintf("space: rect dims %d vs %d", len(r), len(o)))
	}
	for i := range r {
		if o[i].Empty() {
			continue
		}
		if !(o[i].Lo >= r[i].Lo && o[i].Hi <= r[i].Hi) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (r Rect) Clone() Rect {
	out := make(Rect, len(r))
	copy(out, r)
	return out
}

// Equal reports exact equality of all endpoints.
func (r Rect) Equal(o Rect) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the rectangle as a product of intervals.
func (r Rect) String() string {
	parts := make([]string, len(r))
	for i, iv := range r {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " × ")
}
