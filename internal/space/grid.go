package space

import (
	"fmt"
	"math"
)

// Axis describes one dimension of a regular grid: the covered range
// (Lo, Hi] divided into Cells equal half-open cells.
type Axis struct {
	Lo, Hi float64
	Cells  int
}

func (a Axis) width() float64 { return (a.Hi - a.Lo) / float64(a.Cells) }

// Grid is a regular grid over a bounded box in Ω. Cell c in dimension d
// covers (Lo + c·w, Lo + (c+1)·w]. Grid cells are identified by a single
// linearised CellID in row-major order (dimension 0 slowest).
//
// The grid is the substrate of the paper's grid-based clustering framework
// (§4.1): subscriptions are rasterised onto cells, cells carry membership
// vectors, and clustering operates on (hyper-)cells.
type Grid struct {
	axes  []Axis
	total int
}

// CellID identifies one grid cell; valid IDs are in [0, NumCells()).
type CellID int

// NewGrid builds a grid from per-dimension axes. Every axis must have a
// positive, finite extent and at least one cell.
func NewGrid(axes []Axis) (*Grid, error) {
	if len(axes) == 0 {
		return nil, fmt.Errorf("space: grid needs at least one axis")
	}
	total := 1
	for d, a := range axes {
		if a.Cells <= 0 {
			return nil, fmt.Errorf("space: axis %d has %d cells", d, a.Cells)
		}
		if !(a.Lo < a.Hi) || math.IsInf(a.Lo, 0) || math.IsInf(a.Hi, 0) {
			return nil, fmt.Errorf("space: axis %d has invalid range (%v, %v]", d, a.Lo, a.Hi)
		}
		if total > math.MaxInt32/a.Cells {
			return nil, fmt.Errorf("space: grid too large (>%d cells)", math.MaxInt32)
		}
		total *= a.Cells
	}
	g := &Grid{axes: make([]Axis, len(axes)), total: total}
	copy(g.axes, axes)
	return g, nil
}

// UniformGrid builds a grid with the same axis repeated over dim dimensions.
func UniformGrid(dim int, lo, hi float64, cells int) (*Grid, error) {
	axes := make([]Axis, dim)
	for i := range axes {
		axes[i] = Axis{Lo: lo, Hi: hi, Cells: cells}
	}
	return NewGrid(axes)
}

// Dim returns the grid dimensionality.
func (g *Grid) Dim() int { return len(g.axes) }

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return g.total }

// Axes returns a copy of the grid's axes.
func (g *Grid) Axes() []Axis {
	out := make([]Axis, len(g.axes))
	copy(out, g.axes)
	return out
}

// Bounds returns the grid's covering rectangle.
func (g *Grid) Bounds() Rect {
	r := make(Rect, len(g.axes))
	for d, a := range g.axes {
		r[d] = Interval{Lo: a.Lo, Hi: a.Hi}
	}
	return r
}

// axisIndex returns the cell index of x along axis d, or false when x lies
// outside (Lo, Hi].
func (g *Grid) axisIndex(d int, x float64) (int, bool) {
	a := g.axes[d]
	if x <= a.Lo || x > a.Hi {
		return 0, false
	}
	w := a.width()
	// Cell i covers (Lo + i·w, Lo + (i+1)·w]; the index of x is
	// ceil((x-Lo)/w) - 1. Guard against float rounding at cell borders by
	// correcting by one step when the closed/open checks disagree.
	i := int(math.Ceil((x-a.Lo)/w)) - 1
	if i < 0 {
		i = 0
	}
	if i >= a.Cells {
		i = a.Cells - 1
	}
	if x <= a.Lo+float64(i)*w && i > 0 {
		i--
	} else if x > a.Lo+float64(i+1)*w && i < a.Cells-1 {
		i++
	}
	return i, true
}

// Locate returns the cell containing point p, or ok=false when the point
// falls outside the grid bounds (such events fall back to unicast in the
// matcher).
func (g *Grid) Locate(p Point) (CellID, bool) {
	if len(p) != len(g.axes) {
		panic(fmt.Sprintf("space: point dim %d vs grid dim %d", len(p), len(g.axes)))
	}
	id := 0
	for d := range g.axes {
		i, ok := g.axisIndex(d, p[d])
		if !ok {
			return 0, false
		}
		id = id*g.axes[d].Cells + i
	}
	return CellID(id), true
}

// Coords decomposes a CellID into per-dimension cell indices.
func (g *Grid) Coords(id CellID) []int {
	if id < 0 || int(id) >= g.total {
		panic(fmt.Sprintf("space: cell id %d out of range [0,%d)", id, g.total))
	}
	out := make([]int, len(g.axes))
	v := int(id)
	for d := len(g.axes) - 1; d >= 0; d-- {
		out[d] = v % g.axes[d].Cells
		v /= g.axes[d].Cells
	}
	return out
}

// CellRect returns the rectangle covered by the cell. The first and last
// cells along each axis snap exactly to the axis bounds, so the cells of an
// axis tile (Lo, Hi] without float-rounding gaps at the ends.
func (g *Grid) CellRect(id CellID) Rect {
	coords := g.Coords(id)
	r := make(Rect, len(g.axes))
	for d, a := range g.axes {
		w := a.width()
		iv := Interval{Lo: a.Lo + float64(coords[d])*w, Hi: a.Lo + float64(coords[d]+1)*w}
		if coords[d] == 0 {
			iv.Lo = a.Lo
		}
		if coords[d] == a.Cells-1 {
			iv.Hi = a.Hi
		}
		r[d] = iv
	}
	return r
}

// CellCenter returns the midpoint of the cell.
func (g *Grid) CellCenter(id CellID) Point {
	r := g.CellRect(id)
	p := make(Point, len(r))
	for d, iv := range r {
		p[d] = (iv.Lo + iv.Hi) / 2
	}
	return p
}

// axisRange returns the closed range [first, last] of cell indices along
// axis d whose cells intersect interval iv, or ok=false when none do.
func (g *Grid) axisRange(d int, iv Interval) (first, last int, ok bool) {
	a := g.axes[d]
	clipped, nonEmpty := iv.Intersect(Interval{Lo: a.Lo, Hi: a.Hi})
	if !nonEmpty {
		return 0, 0, false
	}
	w := a.width()
	// Cell i intersects (lo, hi] iff Lo + (i+1)·w > lo and Lo + i·w < hi.
	first = int(math.Floor((clipped.Lo - a.Lo) / w))
	if a.Lo+float64(first+1)*w <= clipped.Lo {
		first++
	}
	last = int(math.Floor((clipped.Hi - a.Lo) / w))
	if a.Lo+float64(last)*w >= clipped.Hi {
		last--
	}
	if first < 0 {
		first = 0
	}
	if last >= a.Cells {
		last = a.Cells - 1
	}
	if first > last {
		return 0, 0, false
	}
	return first, last, true
}

// ForEachCellIn calls fn with the id of every grid cell intersecting rect,
// in increasing CellID order. Rasterising subscriptions onto the grid is the
// first step of the clustering framework.
func (g *Grid) ForEachCellIn(rect Rect, fn func(CellID)) {
	if len(rect) != len(g.axes) {
		panic(fmt.Sprintf("space: rect dim %d vs grid dim %d", len(rect), len(g.axes)))
	}
	firsts := make([]int, len(g.axes))
	lasts := make([]int, len(g.axes))
	for d := range g.axes {
		f, l, ok := g.axisRange(d, rect[d])
		if !ok {
			return
		}
		firsts[d], lasts[d] = f, l
	}
	coords := make([]int, len(g.axes))
	copy(coords, firsts)
	for {
		id := 0
		for d := range g.axes {
			id = id*g.axes[d].Cells + coords[d]
		}
		fn(CellID(id))
		// Odometer increment, last dimension fastest.
		d := len(coords) - 1
		for d >= 0 {
			coords[d]++
			if coords[d] <= lasts[d] {
				break
			}
			coords[d] = firsts[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

// CellsIn returns the ids of all cells intersecting rect.
func (g *Grid) CellsIn(rect Rect) []CellID {
	var out []CellID
	g.ForEachCellIn(rect, func(id CellID) { out = append(out, id) })
	return out
}
