package space

import (
	"math"
	"testing"
)

// FuzzGridLocate checks, for arbitrary grid shapes and points, that Locate
// and CellRect agree: a located point lies inside its cell's rectangle and
// an unlocatable point lies outside the grid bounds.
func FuzzGridLocate(f *testing.F) {
	f.Add(0.0, 10.0, 5, 3.3, 7.7)
	f.Add(-5.0, 5.0, 7, 0.0, -5.0)
	f.Add(0.0, 1.0, 1, 0.5, 1.0)
	f.Add(0.0, 20.0, 9, 20.0, 0.0001)
	f.Fuzz(func(t *testing.T, lo, hi float64, cells int, x, y float64) {
		if !(lo < hi) || math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			t.Skip()
		}
		if cells < 1 || cells > 64 {
			t.Skip()
		}
		if hi-lo < 1e-9 || hi-lo > 1e12 {
			t.Skip()
		}
		if math.IsNaN(x) || math.IsNaN(y) {
			t.Skip()
		}
		g, err := NewGrid([]Axis{{Lo: lo, Hi: hi, Cells: cells}, {Lo: lo, Hi: hi, Cells: cells}})
		if err != nil {
			t.Skip()
		}
		p := Point{x, y}
		id, ok := g.Locate(p)
		if !ok {
			if g.Bounds().Contains(p) {
				t.Fatalf("point %v inside bounds but not located", p)
			}
			return
		}
		if !g.CellRect(id).Contains(p) {
			t.Fatalf("point %v located in cell %d whose rect %v excludes it", p, id, g.CellRect(id))
		}
	})
}

// FuzzIntervalAlgebra checks intersection laws for arbitrary endpoints.
func FuzzIntervalAlgebra(f *testing.F) {
	f.Add(0.0, 1.0, 0.5, 2.0, 0.7)
	f.Add(-1.0, -1.0, 3.0, 3.0, 0.0)
	f.Add(0.0, 5.0, 5.0, 9.0, 5.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, x float64) {
		for _, v := range []float64{a, b, c, d, x} {
			if math.IsNaN(v) {
				t.Skip()
			}
		}
		i1 := Interval{Lo: a, Hi: b}
		i2 := Interval{Lo: c, Hi: d}
		inter, ok := i1.Intersect(i2)
		if ok != i1.Intersects(i2) {
			t.Fatal("Intersect and Intersects disagree")
		}
		// Membership distributes over intersection.
		want := i1.Contains(x) && i2.Contains(x)
		got := ok && inter.Contains(x)
		if want != got {
			t.Fatalf("x=%v in %v∩%v: got %v want %v", x, i1, i2, got, want)
		}
		// Commutativity.
		inter2, ok2 := i2.Intersect(i1)
		if ok != ok2 || (ok && inter != inter2) {
			t.Fatal("intersection not commutative")
		}
	})
}

// FuzzPredicateNormalize checks that normalisation preserves semantics.
func FuzzPredicateNormalize(f *testing.F) {
	f.Add(0.0, 2.0, 1.0, 3.0, 1.5)
	f.Add(0.0, 1.0, 1.0, 2.0, 1.0)
	f.Add(5.0, 4.0, 2.0, 2.0, 3.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, x float64) {
		for _, v := range []float64{a, b, c, d, x} {
			if math.IsNaN(v) {
				t.Skip()
			}
		}
		p := Predicate{{Lo: a, Hi: b}, {Lo: c, Hi: d}}
		n := p.Normalize()
		if p.Matches(x) != n.Matches(x) {
			t.Fatalf("normalisation changed semantics at %v: %v vs %v", x, p, n)
		}
		// Normalised intervals are sorted, non-empty and disjoint.
		for i, iv := range n {
			if iv.Empty() {
				t.Fatal("empty interval survived")
			}
			if i > 0 && n[i-1].Hi > iv.Lo {
				t.Fatalf("overlap after normalise: %v", n)
			}
		}
	})
}
