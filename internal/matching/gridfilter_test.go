package matching

import (
	"reflect"
	"testing"

	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestGridFilterMatchesBrute(t *testing.T) {
	w, evs := stockWorld(t, 600, 70)
	grid, err := space.NewGrid(w.Axes)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := NewGridFilter(w, grid)
	if err != nil {
		t.Fatal(err)
	}
	brute := NewBrute(w)
	nonEmpty := 0
	for _, e := range evs {
		got := gf.Match(e.Point)
		want := brute.Match(e.Point)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mismatch at %v: grid %v brute %v", e.Point, got, want)
		}
		if len(want) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("workload degenerate")
	}
}

func TestGridFilterOutsideGridFallback(t *testing.T) {
	w, _ := stockWorld(t, 200, 71)
	grid, err := space.NewGrid(w.Axes)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := NewGridFilter(w, grid)
	if err != nil {
		t.Fatal(err)
	}
	brute := NewBrute(w)
	// A point far outside the grid; wildcard-ish subscriptions may still
	// match and must be found by the fallback scan.
	p := space.Point{-100, -100, -100, -100}
	if !reflect.DeepEqual(gf.Match(p), brute.Match(p)) {
		t.Error("fallback scan differs from oracle")
	}
}

func TestGridFilterValidation(t *testing.T) {
	w, _ := stockWorld(t, 50, 72)
	grid, _ := space.NewGrid(w.Axes)
	if _, err := NewGridFilter(nil, grid); err == nil {
		t.Error("nil world accepted")
	}
	if _, err := NewGridFilter(w, nil); err == nil {
		t.Error("nil grid accepted")
	}
	bad, _ := space.UniformGrid(2, 0, 1, 2)
	if _, err := NewGridFilter(w, bad); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := NewGridFilter(&workload.World{}, grid); err == nil {
		t.Error("empty world accepted")
	}
}

func BenchmarkGridFilterMatch(b *testing.B) {
	cfg := topology.Eval600
	cfg.Seed = 46
	g, err := topology.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{NumSubscriptions: 5000, PubModes: 1, Seed: 47})
	if err != nil {
		b.Fatal(err)
	}
	grid, err := space.NewGrid(w.Axes)
	if err != nil {
		b.Fatal(err)
	}
	gf, err := NewGridFilter(w, grid)
	if err != nil {
		b.Fatal(err)
	}
	evs := w.Events(512, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gf.Match(evs[i%len(evs)].Point)
	}
}
