package matching

import (
	"repro/internal/space"
	"repro/internal/telemetry"
)

// CandidateMatcher is an optional SubscriptionMatcher extension for
// matchers that scan a candidate set wider than the exact result (the
// brute-force oracle scans everything, the grid prefilter scans one cell's
// worth). MatchCandidates reports how many subscriptions were considered so
// the instrumented wrapper can expose the candidates-vs-matches waste
// ratio. Tree-backed matchers prune exactly and do not implement it.
type CandidateMatcher interface {
	SubscriptionMatcher
	// MatchCandidates behaves like Match and additionally returns the
	// number of subscriptions examined to produce the result.
	MatchCandidates(p space.Point) (matches []int, candidates int)
}

// MatchCandidates implements CandidateMatcher: the oracle always scans the
// whole subscription population.
func (b *Brute) MatchCandidates(p space.Point) ([]int, int) {
	return b.Match(p), len(b.w.Subs)
}

// MatchCandidates implements CandidateMatcher: the prefilter scans the
// located cell's posting list (or everything on a grid miss).
func (g *GridFilter) MatchCandidates(p space.Point) ([]int, int) {
	id, ok := g.grid.Locate(p)
	if !ok {
		return g.Match(p), len(g.w.Subs)
	}
	return g.Match(p), len(g.cells[id])
}

// Instrumented wraps any SubscriptionMatcher with telemetry: per-call
// stabbing latency (power-of-two buckets), a matches-per-event histogram,
// and cumulative candidate/match counters whose ratio is the matcher's
// waste (how many subscriptions were touched per true match). The wrapper
// is transparent — Match returns exactly what the inner matcher returns.
type Instrumented struct {
	inner SubscriptionMatcher
	cand  CandidateMatcher // nil when inner prunes exactly

	latency    *telemetry.Histogram
	matchSizes *telemetry.Histogram
	events     *telemetry.Counter
	matches    *telemetry.Counter
	candidates *telemetry.Counter
}

// Instrument wraps a matcher, publishing metrics into the scope:
//
//	stab_latency_ns  histogram  per-Match wall time
//	matches_per_event histogram  result-set sizes
//	events           counter    Match calls
//	matches          counter    total matched subscriptions
//	candidates       counter    total subscriptions examined
//
// With a nil scope the wrapper still works and records nothing.
func Instrument(sm SubscriptionMatcher, scope *telemetry.Scope) *Instrumented {
	m := &Instrumented{
		inner:      sm,
		latency:    scope.Histogram("stab_latency_ns", telemetry.LatencyBuckets()),
		matchSizes: scope.Histogram("matches_per_event", telemetry.PowerOfTwoBuckets(1, 12)),
		events:     scope.Counter("events"),
		matches:    scope.Counter("matches"),
		candidates: scope.Counter("candidates"),
	}
	if cm, ok := sm.(CandidateMatcher); ok {
		m.cand = cm
	}
	return m
}

// Match implements SubscriptionMatcher.
func (m *Instrumented) Match(p space.Point) []int {
	stop := m.latency.Start()
	var out []int
	var cand int
	if m.cand != nil {
		out, cand = m.cand.MatchCandidates(p)
	} else {
		out = m.inner.Match(p)
		cand = len(out) // exact index: every candidate is a match
	}
	stop()
	m.events.Inc()
	m.matches.Add(int64(len(out)))
	m.candidates.Add(int64(cand))
	m.matchSizes.Observe(float64(len(out)))
	return out
}
