package matching

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/noloss"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

func stockWorld(t *testing.T, subs int, seed int64) (*workload.World, []workload.Event) {
	t.Helper()
	cfg := topology.Eval600
	cfg.Seed = seed
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: subs, PubModes: 1, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, w.Events(500, seed+2)
}

func TestRTreeMatchesBrute(t *testing.T) {
	w, evs := stockWorld(t, 800, 40)
	brute := NewBrute(w)
	idx, err := NewRTree(w)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, e := range evs {
		got := idx.Match(e.Point)
		want := brute.Match(e.Point)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("match mismatch for %v: rtree %v brute %v", e.Point, got, want)
		}
		if len(want) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no event matched any subscription; workload degenerate")
	}
}

func TestNewRTreeEmptyWorld(t *testing.T) {
	if _, err := NewRTree(nil); err == nil {
		t.Error("nil world accepted")
	}
	if _, err := NewRTree(&workload.World{}); err == nil {
		t.Error("empty world accepted")
	}
}

func TestInterestedNodesDedup(t *testing.T) {
	w, _ := stockWorld(t, 50, 41)
	// Construct duplicate owners artificially.
	owner := w.Subs[0].Owner
	w.Subs[1].Owner = owner
	nodes := InterestedNodes(w, []int{0, 1})
	if len(nodes) != 1 || nodes[0] != owner {
		t.Fatalf("InterestedNodes = %v", nodes)
	}
	if got := InterestedNodes(w, nil); len(got) != 0 {
		t.Errorf("empty input gave %v", got)
	}
	// Sorted output.
	nodes = InterestedNodes(w, []int{0, 1, 2, 3, 4})
	for i := 1; i < len(nodes); i++ {
		if nodes[i] <= nodes[i-1] {
			t.Fatal("InterestedNodes not strictly sorted")
		}
	}
}

func TestGridIndex(t *testing.T) {
	w, evs := stockWorld(t, 300, 42)
	grid, err := space.NewGrid(w.Axes)
	if err != nil {
		t.Fatal(err)
	}
	in, err := cluster.BuildInput(w, grid, evs, 300)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := (&cluster.KMeans{Variant: cluster.Forgy}).Cluster(in, 15)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.BuildResult(in, assign)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := NewGridIndex(grid, res)
	if err != nil {
		t.Fatal(err)
	}

	hits, misses := 0, 0
	for _, e := range evs {
		g, ok := gi.GroupFor(e.Point)
		if !ok {
			misses++
			continue
		}
		hits++
		if g < 0 || g >= len(res.Groups) {
			t.Fatalf("group index %d out of range", g)
		}
		// The group must agree with the direct cell lookup.
		cid, ok := grid.Locate(e.Point)
		if !ok {
			t.Fatal("GroupFor hit but Locate missed")
		}
		if res.CellGroup[cid] != g {
			t.Fatal("GroupFor disagrees with CellGroup")
		}
	}
	if hits == 0 {
		t.Fatal("no event routed to any group")
	}
	_ = misses
}

func TestGridIndexNil(t *testing.T) {
	if _, err := NewGridIndex(nil, nil); err == nil {
		t.Error("nil args accepted")
	}
}

// TestGridIndexCoversInterested: when an event routes to a group, every
// interested subscriber must be inside that group (the framework
// guarantee that makes grid multicast lossless on clustered cells).
func TestGridIndexCoversInterested(t *testing.T) {
	w, evs := stockWorld(t, 300, 43)
	grid, err := space.NewGrid(w.Axes)
	if err != nil {
		t.Fatal(err)
	}
	in, err := cluster.BuildInput(w, grid, evs, 0) // no budget: all cells clustered
	if err != nil {
		t.Fatal(err)
	}
	assign, err := cluster.MST{}.Cluster(in, 25)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.BuildResult(in, assign)
	if err != nil {
		t.Fatal(err)
	}
	gi, _ := NewGridIndex(grid, res)
	brute := NewBrute(w)
	for _, e := range evs {
		g, ok := gi.GroupFor(e.Point)
		if !ok {
			continue
		}
		for _, si := range brute.Match(e.Point) {
			idx, _ := w.SubscriberIndex(w.Subs[si].Owner)
			if !res.Groups[g].Members.Test(idx) {
				t.Fatalf("interested subscriber %d missing from routed group", idx)
			}
		}
	}
}

func TestNoLossIndex(t *testing.T) {
	w, evs := stockWorld(t, 400, 44)
	res, err := noloss.Build(w, evs, noloss.Config{PoolSize: 600, Iterations: 4, Seeds: 32})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewNoLossIndex(res, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Groups()) > 50 {
		t.Fatalf("indexed %d groups", len(idx.Groups()))
	}
	routed := 0
	for _, e := range evs {
		g, ok := idx.GroupFor(e.Point)
		if !ok {
			continue
		}
		routed++
		// Containment and maximal weight among containing groups.
		if !idx.Groups()[g].Rect.Contains(e.Point) {
			t.Fatal("routed group does not contain event")
		}
		for j := 0; j < g; j++ {
			if idx.Groups()[j].Rect.Contains(e.Point) {
				t.Fatal("a higher-weight containing group was skipped")
			}
		}
	}
	if routed == 0 {
		t.Fatal("no event routed")
	}
}

func TestNoLossIndexValidation(t *testing.T) {
	if _, err := NewNoLossIndex(nil, 5); err == nil {
		t.Error("nil result accepted")
	}
	w, evs := stockWorld(t, 50, 45)
	res, err := noloss.Build(w, evs, noloss.Config{PoolSize: 20, Iterations: 1, Seeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNoLossIndex(res, 0); err == nil {
		t.Error("k=0 accepted")
	}
	// k beyond the pool is clamped.
	idx, err := NewNoLossIndex(res, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Groups()) != len(res.Groups) {
		t.Error("clamp failed")
	}
}

func BenchmarkRTreeMatch(b *testing.B) {
	cfg := topology.Eval600
	cfg.Seed = 46
	g, err := topology.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{NumSubscriptions: 5000, PubModes: 1, Seed: 47})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := NewRTree(w)
	if err != nil {
		b.Fatal(err)
	}
	evs := w.Events(512, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = idx.Match(evs[i%len(evs)].Point)
	}
}

func BenchmarkBruteMatch(b *testing.B) {
	cfg := topology.Eval600
	cfg.Seed = 46
	g, err := topology.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{NumSubscriptions: 5000, PubModes: 1, Seed: 47})
	if err != nil {
		b.Fatal(err)
	}
	brute := NewBrute(w)
	evs := w.Events(512, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = brute.Match(evs[i%len(evs)].Point)
	}
}

// newWorldGrid builds the world's suggested grid (test helper shared with
// the cross-matcher tests).
func newWorldGrid(w *workload.World) (*space.Grid, error) {
	return space.NewGrid(w.Axes)
}
