package matching

import (
	"fmt"
	"sort"

	"repro/internal/space"
	"repro/internal/workload"
)

// GridFilter is the third exact matcher: a cell-indexed prefilter over the
// clustering grid. Each grid cell stores the candidate subscriptions whose
// rectangles intersect it; matching locates the event's cell and filters
// the candidates exactly. The paper notes the grid data structures built
// for clustering double as a matching index; this realises that remark.
//
// Events outside the grid bounds fall back to a linear scan, so GridFilter
// is exact everywhere (matching the Brute oracle), just faster inside the
// grid.
type GridFilter struct {
	w     *workload.World
	grid  *space.Grid
	cells map[space.CellID][]int
}

// NewGridFilter builds the prefilter over the world's suggested grid (or
// any grid covering its event space).
func NewGridFilter(w *workload.World, grid *space.Grid) (*GridFilter, error) {
	if w == nil || len(w.Subs) == 0 {
		return nil, fmt.Errorf("matching: empty world")
	}
	if grid == nil {
		return nil, fmt.Errorf("matching: nil grid")
	}
	if grid.Dim() != w.Dim {
		return nil, fmt.Errorf("matching: grid dim %d vs world dim %d", grid.Dim(), w.Dim)
	}
	gf := &GridFilter{w: w, grid: grid, cells: make(map[space.CellID][]int)}
	for i, s := range w.Subs {
		grid.ForEachCellIn(s.Rect, func(id space.CellID) {
			gf.cells[id] = append(gf.cells[id], i)
		})
	}
	return gf, nil
}

// Match implements SubscriptionMatcher.
func (g *GridFilter) Match(p space.Point) []int {
	id, ok := g.grid.Locate(p)
	if !ok {
		// Outside the grid: exact fallback scan.
		var out []int
		for i, s := range g.w.Subs {
			if s.Rect.Contains(p) {
				out = append(out, i)
			}
		}
		return out
	}
	var out []int
	for _, i := range g.cells[id] {
		if g.w.Subs[i].Rect.Contains(p) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
