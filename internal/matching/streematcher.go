package matching

import (
	"fmt"
	"sort"

	"repro/internal/space"
	"repro/internal/stree"
	"repro/internal/workload"
)

// STree is the fourth exact matcher: the unbalanced split-tree index of
// the paper's ref [1] (see package stree). Cheaper to build than the
// R*-tree and competitive on skewed subscription populations.
type STree struct {
	w    *workload.World
	tree *stree.Tree
}

// NewSTree builds the index over the world's subscriptions.
func NewSTree(w *workload.World) (*STree, error) {
	if w == nil || len(w.Subs) == 0 {
		return nil, fmt.Errorf("matching: empty world")
	}
	t := stree.New(w.Dim)
	for i, s := range w.Subs {
		if err := t.Insert(s.Rect, i); err != nil {
			return nil, fmt.Errorf("matching: indexing subscription %d: %w", i, err)
		}
	}
	return &STree{w: w, tree: t}, nil
}

// Match implements SubscriptionMatcher.
func (t *STree) Match(p space.Point) []int {
	out := t.tree.SearchPoint(p)
	sort.Ints(out)
	return out
}
