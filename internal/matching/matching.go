// Package matching solves the runtime half of the pub-sub problem: mapping
// each published event to (a) the exact set of interested subscriptions and
// (b) the multicast group a clustering solution routes it to.
//
// Exact subscription matching is offered in two interchangeable
// implementations — a linear-scan oracle and an R*-tree index (the paper's
// matching substrate, refs [5] and [16]). Group lookup comes in two
// flavours mirroring the two clustering families: a grid lookup (Fig 5)
// and a highest-weight-containing-rectangle lookup for No-Loss groups
// (Fig 6).
package matching

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/noloss"
	"repro/internal/rtree"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

// SubscriptionMatcher finds all subscriptions containing an event point.
// Implementations return indices into the World.Subs slice, sorted
// ascending.
type SubscriptionMatcher interface {
	Match(p space.Point) []int
}

// Brute is the O(k) linear-scan oracle matcher.
type Brute struct {
	w *workload.World
}

// NewBrute creates a brute-force matcher over the world's subscriptions.
func NewBrute(w *workload.World) *Brute { return &Brute{w: w} }

// Match implements SubscriptionMatcher.
func (b *Brute) Match(p space.Point) []int {
	var out []int
	for i, s := range b.w.Subs {
		if s.Rect.Contains(p) {
			out = append(out, i)
		}
	}
	return out
}

// RTree is the indexed matcher: an R*-tree over subscription rectangles.
type RTree struct {
	w    *workload.World
	tree *rtree.Tree
}

// NewRTree builds the index. Construction is O(k log k)-ish; matching a
// point is then sublinear in the subscription count.
func NewRTree(w *workload.World) (*RTree, error) {
	if w == nil || len(w.Subs) == 0 {
		return nil, fmt.Errorf("matching: empty world")
	}
	t := rtree.New(w.Dim)
	for i, s := range w.Subs {
		if err := t.Insert(s.Rect, i); err != nil {
			return nil, fmt.Errorf("matching: indexing subscription %d: %w", i, err)
		}
	}
	return &RTree{w: w, tree: t}, nil
}

// Match implements SubscriptionMatcher.
func (t *RTree) Match(p space.Point) []int {
	out := t.tree.SearchPoint(p)
	sort.Ints(out)
	return out
}

// InterestedNodes deduplicates matched subscriptions into the distinct
// interested subscriber nodes, in increasing node order.
func InterestedNodes(w *workload.World, subIdx []int) []topology.NodeID {
	seen := map[topology.NodeID]bool{}
	var out []topology.NodeID
	for _, i := range subIdx {
		n := w.Subs[i].Owner
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GridIndex routes events to grid-based multicast groups (Fig 5): locate
// the event's grid cell; if the cell was clustered, the cell's group
// receives the event.
type GridIndex struct {
	grid *space.Grid
	res  *cluster.Result
}

// NewGridIndex wraps a clustering result for matching.
func NewGridIndex(grid *space.Grid, res *cluster.Result) (*GridIndex, error) {
	if grid == nil || res == nil {
		return nil, fmt.Errorf("matching: nil grid or result")
	}
	return &GridIndex{grid: grid, res: res}, nil
}

// GroupFor returns the multicast group index for the event point, or
// ok=false when the event falls outside the grid or in an unclustered cell
// (unicast fallback).
func (g *GridIndex) GroupFor(p space.Point) (int, bool) {
	id, ok := g.grid.Locate(p)
	if !ok {
		return 0, false
	}
	gi, ok := g.res.CellGroup[id]
	return gi, ok
}

// NoLossIndex routes events to No-Loss groups (Fig 6): among the K group
// rectangles containing the event, pick the one with the greatest density
// w(s). Group rectangles are indexed in an R*-tree.
type NoLossIndex struct {
	groups []noloss.Group
	tree   *rtree.Tree
}

// NewNoLossIndex indexes the first k groups of a No-Loss result (the
// paper's list A truncated to the available multicast groups). The groups
// slice must be weight-sorted as returned by noloss.Build.
func NewNoLossIndex(res *noloss.Result, k int) (*NoLossIndex, error) {
	if res == nil {
		return nil, fmt.Errorf("matching: nil no-loss result")
	}
	if k <= 0 {
		return nil, fmt.Errorf("matching: k = %d, need ≥ 1", k)
	}
	if k > len(res.Groups) {
		k = len(res.Groups)
	}
	if k == 0 {
		return nil, fmt.Errorf("matching: no-loss result has no groups")
	}
	idx := &NoLossIndex{groups: res.Groups[:k]}
	idx.tree = rtree.New(idx.groups[0].Rect.Dim())
	for i, g := range idx.groups {
		if err := idx.tree.Insert(g.Rect, i); err != nil {
			return nil, fmt.Errorf("matching: indexing no-loss group %d: %w", i, err)
		}
	}
	return idx, nil
}

// Groups returns the indexed groups.
func (n *NoLossIndex) Groups() []noloss.Group { return n.groups }

// GroupFor returns the highest-weight group whose region contains p, or
// ok=false when no group region contains the event.
func (n *NoLossIndex) GroupFor(p space.Point) (int, bool) {
	hits := n.tree.SearchPoint(p)
	if len(hits) == 0 {
		return 0, false
	}
	// Groups are weight-sorted, so the smallest index wins.
	best := hits[0]
	for _, h := range hits[1:] {
		if h < best {
			best = h
		}
	}
	return best, true
}
