package matching

import (
	"reflect"
	"testing"

	"repro/internal/topology"
	"repro/internal/workload"
)

func TestSTreeMatchesBrute(t *testing.T) {
	w, evs := stockWorld(t, 700, 75)
	idx, err := NewSTree(w)
	if err != nil {
		t.Fatal(err)
	}
	brute := NewBrute(w)
	for _, e := range evs {
		got := idx.Match(e.Point)
		want := brute.Match(e.Point)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mismatch at %v: stree %v brute %v", e.Point, got, want)
		}
	}
}

func TestSTreeValidation(t *testing.T) {
	if _, err := NewSTree(nil); err == nil {
		t.Error("nil world accepted")
	}
	if _, err := NewSTree(&workload.World{}); err == nil {
		t.Error("empty world accepted")
	}
}

// TestAllMatchersAgree cross-checks all four exact matchers on one stream.
func TestAllMatchersAgree(t *testing.T) {
	w, evs := stockWorld(t, 500, 76)
	rt, err := NewRTree(w)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSTree(w)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := newWorldGrid(w)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := NewGridFilter(w, grid)
	if err != nil {
		t.Fatal(err)
	}
	brute := NewBrute(w)
	for _, e := range evs {
		want := brute.Match(e.Point)
		for name, m := range map[string]SubscriptionMatcher{"rtree": rt, "stree": st, "gridfilter": gf} {
			if got := m.Match(e.Point); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s disagrees at %v: %v vs %v", name, e.Point, got, want)
			}
		}
	}
}

func BenchmarkSTreeMatch(b *testing.B) {
	cfg := topology.Eval600
	cfg.Seed = 46
	g, err := topology.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{NumSubscriptions: 5000, PubModes: 1, Seed: 47})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := NewSTree(w)
	if err != nil {
		b.Fatal(err)
	}
	evs := w.Events(512, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = idx.Match(evs[i%len(evs)].Point)
	}
}
