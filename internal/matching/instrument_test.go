package matching

import (
	"testing"

	"repro/internal/space"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

func instrumentWorld(t *testing.T) *workload.World {
	t.Helper()
	g, err := topology.Generate(topology.Config{
		TransitBlocks: 1, TransitPerBlock: 2, StubsPerTransit: 2, NodesPerStub: 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{NumSubscriptions: 120, PubModes: 1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestInstrumentedMatchesOracle: the wrapper is transparent and its
// counters reconcile with the oracle's ground truth.
func TestInstrumentedMatchesOracle(t *testing.T) {
	w := instrumentWorld(t)
	oracle := NewBrute(w)
	rt, err := NewRTree(w)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	im := Instrument(rt, reg.Scope("matching"))

	events := w.Events(200, 13)
	totalMatches := int64(0)
	for _, ev := range events {
		got := im.Match(ev.Point)
		want := oracle.Match(ev.Point)
		if len(got) != len(want) {
			t.Fatalf("instrumented returned %d matches, oracle %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("match %d: got %d, want %d", i, got[i], want[i])
			}
		}
		totalMatches += int64(len(want))
	}

	snap := reg.Snapshot()["matching"]
	if snap.Counters["events"] != int64(len(events)) {
		t.Fatalf("events counter = %d, want %d", snap.Counters["events"], len(events))
	}
	if snap.Counters["matches"] != totalMatches {
		t.Fatalf("matches counter = %d, want %d", snap.Counters["matches"], totalMatches)
	}
	if hs := snap.Histograms["stab_latency_ns"]; hs.Count != int64(len(events)) {
		t.Fatalf("latency histogram count = %d, want %d", hs.Count, len(events))
	}
	if hs := snap.Histograms["matches_per_event"]; hs.Count != int64(len(events)) {
		t.Fatalf("match-size histogram count = %d, want %d", hs.Count, len(events))
	}
}

// TestCandidateCounting: the brute matcher reports the full population as
// candidates, the grid prefilter a (usually smaller) cell posting list, and
// candidates never undercount matches.
func TestCandidateCounting(t *testing.T) {
	w := instrumentWorld(t)
	grid, err := space.NewGrid(w.Axes)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := NewGridFilter(w, grid)
	if err != nil {
		t.Fatal(err)
	}
	brute := NewBrute(w)

	events := w.Events(100, 14)
	for _, ev := range events {
		bm, bc := brute.MatchCandidates(ev.Point)
		if bc != len(w.Subs) {
			t.Fatalf("brute candidates = %d, want %d", bc, len(w.Subs))
		}
		gm, gc := gf.MatchCandidates(ev.Point)
		if len(gm) != len(bm) {
			t.Fatalf("grid filter found %d matches, oracle %d", len(gm), len(bm))
		}
		if gc < len(gm) {
			t.Fatalf("candidates %d < matches %d", gc, len(gm))
		}
		if gc > len(w.Subs) {
			t.Fatalf("candidates %d > population %d", gc, len(w.Subs))
		}
	}

	// The waste ratio must actually flow into the registry.
	reg := telemetry.NewRegistry()
	im := Instrument(gf, reg.Scope("matching"))
	for _, ev := range events {
		im.Match(ev.Point)
	}
	snap := reg.Snapshot()["matching"]
	if snap.Counters["candidates"] < snap.Counters["matches"] {
		t.Fatalf("candidates %d < matches %d in registry",
			snap.Counters["candidates"], snap.Counters["matches"])
	}
}

// TestInstrumentNilScope: a nil scope records nothing but stays correct.
func TestInstrumentNilScope(t *testing.T) {
	w := instrumentWorld(t)
	im := Instrument(NewBrute(w), nil)
	for _, ev := range w.Events(20, 15) {
		got := im.Match(ev.Point)
		want := NewBrute(w).Match(ev.Point)
		if len(got) != len(want) {
			t.Fatalf("nil-scope wrapper changed results: %d vs %d", len(got), len(want))
		}
	}
}
