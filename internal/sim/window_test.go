package sim

import (
	"sync"
	"testing"
)

func TestWindowSeriesBinning(t *testing.T) {
	s := NewWindowSeries(10)
	s.ObserveDelivered(0, 4)
	s.ObserveDelivered(9, 6)
	s.ObserveShed(5)
	s.ObserveDelivered(10, 8) // next window
	s.ObserveLost(25)         // window 2
	s.ObserveRejected(25)

	got := s.Series()
	if len(got) != 3 {
		t.Fatalf("len(Series) = %d, want 3", len(got))
	}
	w0 := got[0]
	if w0.Window != 0 || w0.Delivered != 2 || w0.Shed != 1 || w0.Cost != 10 {
		t.Errorf("window 0 = %+v", w0)
	}
	if mc := w0.MeanCost(); mc != 5 {
		t.Errorf("window 0 MeanCost = %v, want 5", mc)
	}
	if sr := w0.ShedRate(); sr != 1.0/3 {
		t.Errorf("window 0 ShedRate = %v, want 1/3", sr)
	}
	if got[1].Window != 1 || got[1].Delivered != 1 {
		t.Errorf("window 1 = %+v", got[1])
	}
	w2 := got[2]
	if w2.Window != 2 || w2.Lost != 1 || w2.Rejected != 1 {
		t.Errorf("window 2 = %+v", w2)
	}
	if mc := w2.MeanCost(); mc != 0 {
		t.Errorf("empty-delivery MeanCost = %v, want 0", mc)
	}
}

func TestWindowSeriesFillsGaps(t *testing.T) {
	s := NewWindowSeries(5)
	s.ObserveDelivered(0, 1)
	s.ObserveDelivered(20, 1) // window 4; windows 1–3 untouched
	got := s.Series()
	if len(got) != 5 {
		t.Fatalf("len(Series) = %d, want 5 (gaps filled)", len(got))
	}
	for i, w := range got {
		if w.Window != int64(i) {
			t.Errorf("window %d has index %d", i, w.Window)
		}
	}
	if got[2].Delivered != 0 || got[2].ShedRate() != 0 {
		t.Errorf("gap window not zero: %+v", got[2])
	}
}

func TestWindowSeriesEdgeCases(t *testing.T) {
	if got := NewWindowSeries(3).Series(); got != nil {
		t.Errorf("empty series = %v, want nil", got)
	}
	// Width < 1 is clamped rather than dividing by zero.
	s := NewWindowSeries(0)
	if s.Width() != 1 {
		t.Errorf("Width = %d, want clamped 1", s.Width())
	}
	s.ObserveDelivered(-3, 1) // negative sequences clamp to window 0
	if got := s.Series(); len(got) != 1 || got[0].Window != 0 {
		t.Errorf("negative-seq series = %+v", got)
	}
}

func TestWindowSeriesConcurrent(t *testing.T) {
	s := NewWindowSeries(100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				seq := int64(g*500 + i)
				s.ObserveDelivered(seq, 1)
				s.ObserveShed(seq)
			}
		}(g)
	}
	wg.Wait()
	var delivered, shed int64
	for _, w := range s.Series() {
		delivered += w.Delivered
		shed += w.Shed
	}
	if delivered != 4000 || shed != 4000 {
		t.Errorf("delivered %d shed %d, want 4000 each", delivered, shed)
	}
}
