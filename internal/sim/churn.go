package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/topology"
	"repro/internal/workload"
)

// ChurnOp is one scheduled subscription change, anchored to the event
// stream: apply it immediately before publishing the event with index
// BeforeEvent. Anchoring churn to event time (rather than wall time) keeps
// churn experiments deterministic and rate-independent.
type ChurnOp struct {
	// BeforeEvent is the event-stream index this op precedes. Ops are
	// emitted in non-decreasing BeforeEvent order.
	BeforeEvent int
	// Subscribe selects the op kind: true adds Sub, false removes a live
	// churned subscription.
	Subscribe bool
	// Sub is the subscription to add (Subscribe ops only).
	Sub workload.Subscription
	// Target, for unsubscribe ops, is the index into the executor's pool
	// of live churned subscriptions (in insertion order) to remove. The
	// generator tracks the same pool, so Target is always in range when
	// ops are applied in order.
	Target int
}

// ChurnConfig parameterises a Poisson churn schedule.
type ChurnConfig struct {
	// Rate is the expected number of churn operations per published event
	// (a Poisson process in event time; inter-arrival gaps are
	// exponential with mean 1/Rate). Must be > 0.
	Rate float64
	// Events is the schedule horizon: ops are generated for the half-open
	// event range [0, Events).
	Events int
	// Seed drives the schedule and the generated subscriptions.
	Seed int64
}

// GenerateChurn builds a deterministic Poisson churn schedule over w.
//
// Each op is a subscribe or unsubscribe with equal probability (always a
// subscribe while no churned subscription is live). New subscriptions
// clone the shape of a random existing subscription's rectangle — so
// churned interest follows the workload's distribution — and land on a
// uniformly random network node, subscriber or not; unsubscribes remove a
// uniformly random live churned subscription. Only churned subscriptions
// are ever removed; the base population stays intact, matching the paper's
// framing of dynamics as arrivals/departures on top of a standing set.
func GenerateChurn(w *workload.World, cfg ChurnConfig) ([]ChurnOp, error) {
	if w == nil || len(w.Subs) == 0 {
		return nil, fmt.Errorf("sim: churn needs a populated world")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("sim: churn rate %v, need > 0", cfg.Rate)
	}
	if cfg.Events <= 0 {
		return nil, fmt.Errorf("sim: churn horizon %d events", cfg.Events)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes := w.Graph.NumNodes()

	var ops []ChurnOp
	alive := 0 // size of the executor's live churned-subscription pool
	// Poisson arrivals in continuous event time.
	for t := rng.ExpFloat64() / cfg.Rate; t < float64(cfg.Events); t += rng.ExpFloat64() / cfg.Rate {
		op := ChurnOp{BeforeEvent: int(t)}
		if alive == 0 || rng.Intn(2) == 0 {
			op.Subscribe = true
			tmpl := w.Subs[rng.Intn(len(w.Subs))]
			op.Sub = workload.Subscription{
				Owner: topology.NodeID(rng.Intn(nodes)),
				Rect:  tmpl.Rect.Clone(),
			}
			alive++
		} else {
			op.Target = rng.Intn(alive)
			alive--
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// ChurnStats summarises a generated schedule.
type ChurnStats struct {
	Subscribes   int
	Unsubscribes int
	// PeakAlive is the largest number of simultaneously live churned
	// subscriptions.
	PeakAlive int
}

// SummarizeChurn replays a schedule's pool bookkeeping.
func SummarizeChurn(ops []ChurnOp) ChurnStats {
	var st ChurnStats
	alive := 0
	for _, op := range ops {
		if op.Subscribe {
			st.Subscribes++
			alive++
			if alive > st.PeakAlive {
				st.PeakAlive = alive
			}
		} else {
			st.Unsubscribes++
			alive--
		}
	}
	return st
}
