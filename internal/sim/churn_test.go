package sim

import (
	"reflect"
	"testing"

	"repro/internal/topology"
	"repro/internal/workload"
)

func churnWorld(t *testing.T) *workload.World {
	t.Helper()
	cfg := topology.Net100
	cfg.Seed = 900
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: 100, PubModes: 1, Seed: 901,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateChurnValidation(t *testing.T) {
	w := churnWorld(t)
	if _, err := GenerateChurn(nil, ChurnConfig{Rate: 1, Events: 10}); err == nil {
		t.Error("nil world accepted")
	}
	if _, err := GenerateChurn(w, ChurnConfig{Rate: 0, Events: 10}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := GenerateChurn(w, ChurnConfig{Rate: 1, Events: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestGenerateChurnSchedule(t *testing.T) {
	w := churnWorld(t)
	cfg := ChurnConfig{Rate: 0.5, Events: 2000, Seed: 902}
	ops, err := GenerateChurn(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson with rate 0.5/event over 2000 events ⇒ ~1000 ops; accept a
	// generous band.
	if len(ops) < 700 || len(ops) > 1300 {
		t.Fatalf("got %d ops, expected ≈1000", len(ops))
	}

	alive := 0
	last := 0
	for i, op := range ops {
		if op.BeforeEvent < last || op.BeforeEvent >= cfg.Events {
			t.Fatalf("op %d anchored at %d (prev %d, horizon %d)", i, op.BeforeEvent, last, cfg.Events)
		}
		last = op.BeforeEvent
		if op.Subscribe {
			if op.Sub.Rect.Dim() != w.Dim {
				t.Fatalf("op %d: subscription dim %d", i, op.Sub.Rect.Dim())
			}
			if op.Sub.Owner < 0 || int(op.Sub.Owner) >= w.Graph.NumNodes() {
				t.Fatalf("op %d: owner %d out of range", i, op.Sub.Owner)
			}
			alive++
		} else {
			if op.Target < 0 || op.Target >= alive {
				t.Fatalf("op %d: unsubscribe target %d with %d alive", i, op.Target, alive)
			}
			alive--
		}
	}

	st := SummarizeChurn(ops)
	if st.Subscribes+st.Unsubscribes != len(ops) {
		t.Fatal("summary op count mismatch")
	}
	if st.Subscribes == 0 || st.Unsubscribes == 0 {
		t.Fatalf("degenerate mix: %+v", st)
	}
	if st.PeakAlive <= 0 {
		t.Fatalf("peak alive %d", st.PeakAlive)
	}

	// Deterministic from the seed.
	again, err := GenerateChurn(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, again) {
		t.Fatal("schedule not reproducible from seed")
	}

	// A different seed produces a different schedule.
	cfg.Seed++
	other, err := GenerateChurn(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ops, other) {
		t.Fatal("seed does not vary the schedule")
	}
}
