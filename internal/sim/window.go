package sim

import (
	"sort"
	"sync"
)

// WindowStats aggregates delivery outcomes over one window of the event
// sequence: events whose sequence number lies in
// [Window·width, (Window+1)·width).
type WindowStats struct {
	// Window is the window index.
	Window int64
	// Delivered counts events whose fan-out completed; Cost is their total
	// delivered cost.
	Delivered int64
	Cost      float64
	// Shed, Rejected and Lost count events dropped by overload shedding,
	// refused at admission, and abandoned by the delivery ladder.
	Shed     int64
	Rejected int64
	Lost     int64
}

// MeanCost is the average delivered cost per delivered event in the window
// (0 when nothing was delivered).
func (w WindowStats) MeanCost() float64 {
	if w.Delivered == 0 {
		return 0
	}
	return w.Cost / float64(w.Delivered)
}

// ShedRate is the fraction of the window's events that were shed or
// rejected rather than delivered or lost.
func (w WindowStats) ShedRate() float64 {
	total := w.Delivered + w.Shed + w.Rejected + w.Lost
	if total == 0 {
		return 0
	}
	return float64(w.Shed+w.Rejected) / float64(total)
}

// WindowSeries bins per-event delivery outcomes into fixed-width sequence
// windows, producing the delivered-cost and shed-rate time series the
// recovery experiments plot. Keying windows by event sequence rather than
// wall time keeps the series deterministic under seeded replays. Safe for
// concurrent use — the broker reports outcomes from several goroutines.
type WindowSeries struct {
	width int64

	mu   sync.Mutex
	wins map[int64]*WindowStats
}

// NewWindowSeries builds a series with the given window width (events per
// window). Width must be ≥ 1.
func NewWindowSeries(width int64) *WindowSeries {
	if width < 1 {
		width = 1
	}
	return &WindowSeries{width: width, wins: make(map[int64]*WindowStats)}
}

// Width returns the window width in events.
func (s *WindowSeries) Width() int64 { return s.width }

func (s *WindowSeries) win(seq int64) *WindowStats {
	idx := seq / s.width
	if seq < 0 {
		idx = 0
	}
	w, ok := s.wins[idx]
	if !ok {
		w = &WindowStats{Window: idx}
		s.wins[idx] = w
	}
	return w
}

// ObserveDelivered records one delivered event and its delivery cost.
func (s *WindowSeries) ObserveDelivered(seq int64, cost float64) {
	s.mu.Lock()
	w := s.win(seq)
	w.Delivered++
	w.Cost += cost
	s.mu.Unlock()
}

// ObserveShed records one event dropped by overload shedding.
func (s *WindowSeries) ObserveShed(seq int64) {
	s.mu.Lock()
	s.win(seq).Shed++
	s.mu.Unlock()
}

// ObserveRejected records one event refused at admission.
func (s *WindowSeries) ObserveRejected(seq int64) {
	s.mu.Lock()
	s.win(seq).Rejected++
	s.mu.Unlock()
}

// ObserveLost records one event abandoned by the delivery ladder.
func (s *WindowSeries) ObserveLost(seq int64) {
	s.mu.Lock()
	s.win(seq).Lost++
	s.mu.Unlock()
}

// Series returns the populated windows ascending by window index. Empty
// windows between populated ones are filled in (all-zero), so the series
// plots with a uniform x-axis.
func (s *WindowSeries) Series() []WindowStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.wins) == 0 {
		return nil
	}
	lo, hi := int64(0), int64(0)
	first := true
	for idx := range s.wins {
		if first || idx < lo {
			lo = idx
		}
		if first || idx > hi {
			hi = idx
		}
		first = false
	}
	out := make([]WindowStats, 0, hi-lo+1)
	for idx := lo; idx <= hi; idx++ {
		if w, ok := s.wins[idx]; ok {
			out = append(out, *w)
		} else {
			out = append(out, WindowStats{Window: idx})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Window < out[j].Window })
	return out
}
