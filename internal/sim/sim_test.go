package sim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/matching"
	"repro/internal/multicast"
	"repro/internal/noloss"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

type fixture struct {
	w      *workload.World
	grid   *space.Grid
	model  *multicast.Model
	match  matching.SubscriptionMatcher
	train  []workload.Event
	events []workload.Event
}

func newFixture(t *testing.T, subs int, seed int64) *fixture {
	t.Helper()
	cfg := topology.Eval600
	cfg.Seed = seed
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: subs, PubModes: 1, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := space.NewGrid(w.Axes)
	if err != nil {
		t.Fatal(err)
	}
	m, err := matching.NewRTree(w)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		w:      w,
		grid:   grid,
		model:  multicast.NewModel(g),
		match:  m,
		train:  w.Events(1500, seed+2),
		events: w.Events(400, seed+3),
	}
}

func TestMeasureBaselines(t *testing.T) {
	f := newFixture(t, 500, 50)
	b, err := MeasureBaselines(f.model, f.w, f.match, f.events)
	if err != nil {
		t.Fatal(err)
	}
	if b.Unicast <= 0 || b.Broadcast <= 0 || b.Ideal <= 0 {
		t.Fatalf("non-positive baselines: %+v", b)
	}
	// The paper's regime: ideal ≤ broadcast, ideal ≤ unicast.
	if b.Ideal > b.Broadcast+1e-9 {
		t.Errorf("ideal %v > broadcast %v", b.Ideal, b.Broadcast)
	}
	if b.Ideal > b.Unicast+1e-9 {
		t.Errorf("ideal %v > unicast %v", b.Ideal, b.Unicast)
	}
}

func TestMeasureBaselinesNoEvents(t *testing.T) {
	f := newFixture(t, 50, 51)
	if _, err := MeasureBaselines(f.model, f.w, f.match, nil); err == nil {
		t.Error("no events accepted")
	}
}

func clusterResult(t *testing.T, f *fixture, alg cluster.Algorithm, k, budget int) *cluster.Result {
	t.Helper()
	in, err := cluster.BuildInput(f.w, f.grid, f.train, budget)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := alg.Cluster(in, k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.BuildResult(in, assign)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEvaluateGridBounds(t *testing.T) {
	f := newFixture(t, 500, 52)
	b, err := MeasureBaselines(f.model, f.w, f.match, f.events)
	if err != nil {
		t.Fatal(err)
	}
	res := clusterResult(t, f, &cluster.KMeans{Variant: cluster.Forgy}, 50, 800)
	c, err := EvaluateGrid(f.model, f.w, f.grid, res, f.match, f.events, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Network <= 0 || c.AppLevel <= 0 {
		t.Fatalf("non-positive costs: %+v", c)
	}
	// Network multicast with 50 groups must sit between ideal and a
	// broadcast-per-event upper bound.
	if c.Network < b.Ideal-1e-9 {
		t.Errorf("network cost %v below ideal %v", c.Network, b.Ideal)
	}
	if c.Network > b.Broadcast+b.Unicast {
		t.Errorf("network cost %v absurdly high (broadcast %v unicast %v)", c.Network, b.Broadcast, b.Unicast)
	}
	// ALM is at least as costly as network multicast on average.
	if c.AppLevel < c.Network-1e-9 {
		t.Errorf("app-level %v < network %v", c.AppLevel, c.Network)
	}
	// And the solution should actually improve over unicast here.
	if imp := Improvement(b, c.Network); imp <= 0 || imp > 100 {
		t.Errorf("improvement %v%% out of expected range", imp)
	}
}

func TestEvaluateGridMoreGroupsHelp(t *testing.T) {
	f := newFixture(t, 500, 53)
	b, err := MeasureBaselines(f.model, f.w, f.match, f.events)
	if err != nil {
		t.Fatal(err)
	}
	in, err := cluster.BuildInput(f.w, f.grid, f.train, 800)
	if err != nil {
		t.Fatal(err)
	}
	alg := &cluster.KMeans{Variant: cluster.Forgy}
	get := func(k int) float64 {
		assign, err := alg.Cluster(in, k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cluster.BuildResult(in, assign)
		if err != nil {
			t.Fatal(err)
		}
		c, err := EvaluateGrid(f.model, f.w, f.grid, res, f.match, f.events, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return Improvement(b, c.Network)
	}
	low, high := get(5), get(80)
	if high <= low {
		t.Errorf("80 groups (%v%%) not better than 5 groups (%v%%)", high, low)
	}
}

func TestEvaluateGridThreshold(t *testing.T) {
	f := newFixture(t, 300, 54)
	res := clusterResult(t, f, cluster.MST{}, 10, 500)
	loose, err := EvaluateGrid(f.model, f.w, f.grid, res, f.match, f.events, Options{})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := EvaluateGrid(f.model, f.w, f.grid, res, f.match, f.events, Options{Threshold: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	// Threshold > 1 forces unicast always; with only 10 coarse groups the
	// multicast-everything strategy wastes more than per-node unicast, so
	// the strict variant should differ (and normally be cheaper).
	if loose.Network == strict.Network {
		t.Error("threshold had no effect")
	}
}

func TestEvaluateNoLoss(t *testing.T) {
	f := newFixture(t, 500, 55)
	b, err := MeasureBaselines(f.model, f.w, f.match, f.events)
	if err != nil {
		t.Fatal(err)
	}
	nres, err := noloss.Build(f.w, f.train, noloss.Config{PoolSize: 1000, Iterations: 5, Seeds: 48})
	if err != nil {
		t.Fatal(err)
	}
	c, err := EvaluateNoLoss(f.model, f.w, nres, 80, f.match, f.events)
	if err != nil {
		t.Fatal(err)
	}
	if c.Network < b.Ideal-1e-9 {
		t.Errorf("no-loss network cost %v below ideal %v", c.Network, b.Ideal)
	}
	if c.AppLevel < c.Network-1e-9 {
		t.Errorf("no-loss ALM %v < network %v", c.AppLevel, c.Network)
	}
	if imp := Improvement(b, c.Network); imp <= 0 || imp > 100 {
		t.Errorf("no-loss improvement %v%% out of range", imp)
	}
}

func TestImprovement(t *testing.T) {
	b := Baselines{Unicast: 100, Ideal: 20}
	if got := Improvement(b, 100); got != 0 {
		t.Errorf("Improvement at unicast = %v", got)
	}
	if got := Improvement(b, 20); got != 100 {
		t.Errorf("Improvement at ideal = %v", got)
	}
	if got := Improvement(b, 60); got != 50 {
		t.Errorf("Improvement midway = %v", got)
	}
	if got := Improvement(Baselines{Unicast: 5, Ideal: 5}, 5); got != 0 {
		t.Errorf("degenerate improvement = %v", got)
	}
}

func TestEvaluateErrorsOnEmptyEvents(t *testing.T) {
	f := newFixture(t, 100, 56)
	res := clusterResult(t, f, &cluster.KMeans{}, 5, 200)
	if _, err := EvaluateGrid(f.model, f.w, f.grid, res, f.match, nil, Options{}); err == nil {
		t.Error("EvaluateGrid accepted empty events")
	}
	nres, err := noloss.Build(f.w, f.train, noloss.Config{PoolSize: 100, Iterations: 1, Seeds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateNoLoss(f.model, f.w, nres, 10, f.match, nil); err == nil {
		t.Error("EvaluateNoLoss accepted empty events")
	}
}

func TestExpectedTransmissions(t *testing.T) {
	if got := ExpectedTransmissions(0, 4); got != 1 {
		t.Errorf("p=0: %v", got)
	}
	if got := ExpectedTransmissions(1, 4); got != 5 {
		t.Errorf("p=1: %v", got)
	}
	// p=0.5, retries=2: 1 + 0.5 + 0.25 = 1.75.
	if got := ExpectedTransmissions(0.5, 2); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("p=0.5 r=2: %v", got)
	}
	// Monotone in p and in retries.
	if ExpectedTransmissions(0.3, 4) >= ExpectedTransmissions(0.6, 4) {
		t.Error("not monotone in p")
	}
	if ExpectedTransmissions(0.3, 2) >= ExpectedTransmissions(0.3, 8) {
		t.Error("not monotone in retries")
	}
	if got := ExpectedTransmissions(0.5, -3); got != 1 {
		t.Errorf("negative retries: %v", got)
	}
}

func TestDeliveryProbability(t *testing.T) {
	if got := DeliveryProbability(0, 3); got != 1 {
		t.Errorf("p=0: %v", got)
	}
	if got := DeliveryProbability(1, 3); got != 0 {
		t.Errorf("p=1: %v", got)
	}
	// p=0.5, retries=1: 1 - 0.25 = 0.75.
	if got := DeliveryProbability(0.5, 1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("p=0.5 r=1: %v", got)
	}
	if DeliveryProbability(0.5, 1) >= DeliveryProbability(0.5, 5) {
		t.Error("more retries must raise delivery probability")
	}
}

func TestFaultAdjust(t *testing.T) {
	c := Costs{Network: 100, AppLevel: 150}
	got := FaultAdjust(c, 0, 4)
	if got != c {
		t.Errorf("loss-free adjust changed costs: %+v", got)
	}
	adj := FaultAdjust(c, 0.5, 2)
	if math.Abs(adj.Network-175) > 1e-9 || math.Abs(adj.AppLevel-262.5) > 1e-9 {
		t.Errorf("FaultAdjust = %+v", adj)
	}
	if adj.Network <= c.Network {
		t.Error("lossy fabric must cost more")
	}
}
