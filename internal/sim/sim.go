// Package sim replays event streams against a network, a subscription
// population and a clustering solution, and accounts communication costs
// exactly as the paper's experiments do (§3, §5.2):
//
//   - the unicast baseline pays one shortest path per *matching
//     subscription* (no node deduplication — the paper's unicast numbers
//     in Tables 1–2 only make sense under this accounting);
//   - broadcast pays the publisher's full shortest-path tree;
//   - ideal multicast pays the publisher's SPT pruned to the interested
//     nodes — the normalisation ceiling;
//   - a clustering solution pays the multicast cost of the routed group
//     (network-supported dense mode or application-level overlay) plus
//     per-node unicast for any interested node the group does not cover;
//     events that no group covers fall back to per-node unicast.
//
// Improvement percentage normalises a solution between those poles:
// 0% = unicast baseline, 100% = ideal multicast.
package sim

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/matching"
	"repro/internal/multicast"
	"repro/internal/noloss"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Baselines are per-event average costs of the three reference schemes.
type Baselines struct {
	Unicast   float64
	Broadcast float64
	Ideal     float64
}

// MeasureBaselines replays events and accumulates the three reference
// costs.
func MeasureBaselines(m *multicast.Model, w *workload.World, sm matching.SubscriptionMatcher, events []workload.Event) (Baselines, error) {
	if len(events) == 0 {
		return Baselines{}, fmt.Errorf("sim: no events")
	}
	var b Baselines
	for _, e := range events {
		subs := sm.Match(e.Point)
		nodes := matching.InterestedNodes(w, subs)
		for _, si := range subs {
			b.Unicast += m.Dist(e.Pub, w.Subs[si].Owner)
		}
		b.Broadcast += m.BroadcastCost(e.Pub)
		b.Ideal += m.SPTCoverCost(e.Pub, nodes)
	}
	n := float64(len(events))
	b.Unicast /= n
	b.Broadcast /= n
	b.Ideal /= n
	return b, nil
}

// Costs are per-event average delivery costs of a clustering solution
// under the two multicast frameworks.
type Costs struct {
	Network  float64 // network-supported dense-mode multicast
	AppLevel float64 // application-level overlay multicast
}

// Options tune solution evaluation.
type Options struct {
	// Threshold is the Fig 5 optimisation: if the fraction of a routed
	// group's members interested in the event is below Threshold, the
	// event is unicast to the interested members instead of multicast to
	// the group. 0 disables the optimisation (always multicast).
	Threshold float64
	// Observe, when non-nil, is called once per replayed event with that
	// event's (un-averaged) network and app-level costs — the hook the
	// telemetry layer uses to feed per-event cost histograms without
	// changing the accounting.
	Observe func(network, appLevel float64)
}

// EvaluateGrid replays events against a grid-based clustering result.
func EvaluateGrid(m *multicast.Model, w *workload.World, grid *space.Grid, res *cluster.Result, sm matching.SubscriptionMatcher, events []workload.Event, opts Options) (Costs, error) {
	if len(events) == 0 {
		return Costs{}, fmt.Errorf("sim: no events")
	}
	gi, err := matching.NewGridIndex(grid, res)
	if err != nil {
		return Costs{}, err
	}
	groupNodes := make([][]topology.NodeID, len(res.Groups))
	overlays := make([]multicast.Overlay, len(res.Groups))
	for i := range res.Groups {
		groupNodes[i] = res.Groups[i].NodesOf(w)
		overlays[i] = m.BuildOverlay(groupNodes[i])
	}
	memberOf := func(g int, n topology.NodeID) bool {
		idx, ok := w.SubscriberIndex(n)
		return ok && res.Groups[g].Members.Test(idx)
	}

	var c Costs
	for _, e := range events {
		nodes := matching.InterestedNodes(w, sm.Match(e.Point))
		g, ok := gi.GroupFor(e.Point)
		if ok && opts.Threshold > 0 && len(groupNodes[g]) > 0 {
			interestedInGroup := 0
			for _, n := range nodes {
				if memberOf(g, n) {
					interestedInGroup++
				}
			}
			if float64(interestedInGroup)/float64(len(groupNodes[g])) < opts.Threshold {
				ok = false // below threshold: unicast to interested only
			}
		}
		var net, app float64
		if !ok {
			u := unicastNodes(m, e.Pub, nodes)
			net, app = u, u
		} else {
			// Grid groups cover every interested subscriber of a clustered
			// cell by construction; no remainder unicast is needed.
			net = m.SPTCoverCost(e.Pub, groupNodes[g])
			app = m.ALMCost(e.Pub, overlays[g])
		}
		c.Network += net
		c.AppLevel += app
		if opts.Observe != nil {
			opts.Observe(net, app)
		}
	}
	n := float64(len(events))
	c.Network /= n
	c.AppLevel /= n
	return c, nil
}

// EvaluateNoLoss replays events against the top-k groups of a No-Loss
// result. Interested nodes outside the routed group are unicast.
func EvaluateNoLoss(m *multicast.Model, w *workload.World, res *noloss.Result, k int, sm matching.SubscriptionMatcher, events []workload.Event) (Costs, error) {
	return EvaluateNoLossObserved(m, w, res, k, sm, events, nil)
}

// EvaluateNoLossObserved is EvaluateNoLoss with a per-event cost hook (see
// Options.Observe). A nil observe reproduces EvaluateNoLoss exactly.
func EvaluateNoLossObserved(m *multicast.Model, w *workload.World, res *noloss.Result, k int, sm matching.SubscriptionMatcher, events []workload.Event, observe func(network, appLevel float64)) (Costs, error) {
	if len(events) == 0 {
		return Costs{}, fmt.Errorf("sim: no events")
	}
	idx, err := matching.NewNoLossIndex(res, k)
	if err != nil {
		return Costs{}, err
	}
	groups := idx.Groups()
	groupNodes := make([][]topology.NodeID, len(groups))
	overlays := make([]multicast.Overlay, len(groups))
	for i := range groups {
		groupNodes[i] = groups[i].NodesOf(w)
		overlays[i] = m.BuildOverlay(groupNodes[i])
	}

	var c Costs
	for _, e := range events {
		nodes := matching.InterestedNodes(w, sm.Match(e.Point))
		g, ok := idx.GroupFor(e.Point)
		var net, app float64
		if !ok {
			u := unicastNodes(m, e.Pub, nodes)
			net, app = u, u
		} else {
			// Multicast to the group, unicast the uncovered remainder.
			var rest []topology.NodeID
			for _, n := range nodes {
				si, ok := w.SubscriberIndex(n)
				if !ok || !groups[g].Members.Test(si) {
					rest = append(rest, n)
				}
			}
			u := unicastNodes(m, e.Pub, rest)
			net = m.SPTCoverCost(e.Pub, groupNodes[g]) + u
			app = m.ALMCost(e.Pub, overlays[g]) + u
		}
		c.Network += net
		c.AppLevel += app
		if observe != nil {
			observe(net, app)
		}
	}
	n := float64(len(events))
	c.Network /= n
	c.AppLevel /= n
	return c, nil
}

// unicastNodes is a per-node unicast (one copy per distinct node).
func unicastNodes(m *multicast.Model, pub topology.NodeID, nodes []topology.NodeID) float64 {
	c := 0.0
	for _, n := range nodes {
		c += m.Dist(pub, n)
	}
	return c
}

// ExpectedTransmissions returns the expected number of transmissions per
// delivery under a per-attempt drop probability p and at most retries
// retransmissions (a truncated geometric series):
//
//	E[T] = (1 − p^(retries+1)) / (1 − p)
//
// It is the multiplicative link-cost overhead of the broker's retry
// protocol: every retransmission re-pays the delivery path.
func ExpectedTransmissions(p float64, retries int) float64 {
	if retries < 0 {
		retries = 0
	}
	switch {
	case p <= 0:
		return 1
	case p >= 1:
		return float64(retries + 1)
	}
	return (1 - math.Pow(p, float64(retries+1))) / (1 - p)
}

// DeliveryProbability returns the chance a delivery succeeds within the
// retry bound: 1 − p^(retries+1).
func DeliveryProbability(p float64, retries int) float64 {
	if retries < 0 {
		retries = 0
	}
	switch {
	case p <= 0:
		return 1
	case p >= 1:
		return 0
	}
	return 1 - math.Pow(p, float64(retries+1))
}

// FaultAdjust scales solution costs by the expected retransmission
// overhead of a lossy fabric: each delivered copy costs
// ExpectedTransmissions(p, retries) times its loss-free price. This is the
// cost model's view of the broker's reliability protocol — replays stay
// cheap while the sweep in internal/experiments prices fault profiles.
func FaultAdjust(c Costs, dropProb float64, retries int) Costs {
	f := ExpectedTransmissions(dropProb, retries)
	return Costs{Network: c.Network * f, AppLevel: c.AppLevel * f}
}

// Improvement converts a solution cost into the paper's improvement
// percentage: 0 at the unicast baseline, 100 at ideal multicast. Returns 0
// when the baseline equals the ideal (no headroom to improve).
func Improvement(b Baselines, cost float64) float64 {
	den := b.Unicast - b.Ideal
	if den <= 0 {
		return 0
	}
	return (b.Unicast - cost) / den * 100
}
