package transport

import (
	"crypto/tls"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/space"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/wire"
	"repro/internal/workload"
)

// ErrConnClosed is returned by client operations after Close or after the
// connection terminated.
var ErrConnClosed = errors.New("transport: connection closed")

// transientErr marks a connect failure worth retrying (dial or I/O
// trouble), as opposed to a protocol-level rejection.
type transientErr struct{ error }

func (t transientErr) Unwrap() error { return t.error }

func isTransient(err error) bool {
	var t transientErr
	return errors.As(err, &t)
}

// ClientConfig tunes a client Conn.
type ClientConfig struct {
	// Addr is the server address (host:port).
	Addr string
	// TLS, when set, wraps the connection.
	TLS *tls.Config
	// Credits is the delivery window granted to the server; it is also
	// the receive buffer capacity (default 256).
	Credits int
	// MaxFrame caps accepted frame payloads (default wire.DefaultMaxFrame).
	MaxFrame int
	// DialTimeout bounds each dial attempt (default 5s).
	DialTimeout time.Duration
	// ReconnectBase and ReconnectMax bound the exponential reconnect
	// backoff (defaults 20ms and 2s).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// MaxReconnects caps consecutive failed reconnect attempts before the
	// Conn gives up (default 10; negative = unbounded).
	MaxReconnects int
	// Dialer overrides how the raw connection is made — the hook the
	// fault injector uses to wrap connections. Defaults to a plain TCP
	// dial of Addr.
	Dialer func(addr string) (net.Conn, error)
	// Registry receives client telemetry under scope "wire_client"; nil
	// uses a private registry.
	Registry *telemetry.Registry
}

func (c *ClientConfig) fill() {
	if c.Credits <= 0 {
		c.Credits = 256
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.ReconnectBase <= 0 {
		c.ReconnectBase = 20 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 2 * time.Second
	}
	if c.MaxReconnects == 0 {
		c.MaxReconnects = 10
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
}

// pending tracks one in-flight request: its encoded frame (kept for
// retransmission after a reconnect) and the channel its reply completes.
type pending struct {
	frame []byte
	done  chan string // error text; "" = ok
	extra chan int64  // subscribe only: granted slot
}

// Conn is a client connection to a transport Server. It transparently
// reconnects and resumes its session after a connection drop,
// retransmitting unacknowledged publishes and control requests (the
// server dedups them), so Publish/Subscribe/Recv observe exactly-once
// semantics across resets. Safe for concurrent use.
type Conn struct {
	cfg ClientConfig
	met *metrics

	recv    chan wire.Deliver
	lastDid atomic.Int64 // highest delivery id received

	mu      sync.Mutex
	conn    net.Conn
	w       *wire.Writer
	session uint64
	nextSeq int64 // next pseq / reqID (shared counter)
	pubs    map[int64]*pending
	ctrl    map[int64]*pending
	pings   map[uint64]chan struct{}
	owed    int64 // consumed deliveries not yet credited back
	err     error // terminal error
	closed  bool
	drain   bool

	readerDone chan struct{}
}

// Dial connects to the server and completes the hello handshake.
func Dial(cfg ClientConfig) (*Conn, error) {
	cfg.fill()
	c := &Conn{
		cfg:        cfg,
		met:        newMetrics(cfg.Registry, "wire_client"),
		recv:       make(chan wire.Deliver, cfg.Credits),
		pubs:       make(map[int64]*pending),
		ctrl:       make(map[int64]*pending),
		pings:      make(map[uint64]chan struct{}),
		readerDone: make(chan struct{}),
	}
	r, err := c.connect(0, 0, uint32(cfg.Credits))
	if err != nil {
		return nil, err
	}
	go c.readLoop(r)
	return c, nil
}

func (c *Conn) dialRaw() (net.Conn, error) {
	if c.cfg.Dialer != nil {
		return c.cfg.Dialer(c.cfg.Addr)
	}
	return net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
}

// connect dials, handshakes, and installs the connection. session 0
// starts a fresh session; otherwise it resumes.
func (c *Conn) connect(session uint64, lastDid int64, credits uint32) (*wire.Reader, error) {
	raw, err := c.dialRaw()
	if err != nil {
		return nil, transientErr{err}
	}
	conn := net.Conn(&countingConn{Conn: raw, in: c.met.bytesIn, out: c.met.bytesOut})
	if c.cfg.TLS != nil {
		conn = tls.Client(conn, c.cfg.TLS)
	}
	w := wire.NewWriter(conn, c.cfg.MaxFrame)
	r := wire.NewReader(conn, c.cfg.MaxFrame)

	conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	hello := wire.AppendHello(nil, wire.Hello{
		Version: wire.Version,
		Session: session,
		LastDid: lastDid,
		Credits: credits,
	})
	if err := writeDirect(w, hello); err != nil {
		conn.Close()
		return nil, transientErr{err}
	}
	payload, err := r.ReadFrame()
	if err != nil {
		conn.Close()
		return nil, transientErr{fmt.Errorf("transport: hello reply: %w", err)}
	}
	if wire.MsgType(payload) == wire.TypeError {
		em, derr := wire.DecodeError(payload)
		conn.Close()
		if derr != nil {
			return nil, derr
		}
		return nil, fmt.Errorf("transport: server rejected hello (code %d): %s", em.Code, em.Msg)
	}
	ack, err := wire.DecodeHelloAck(payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, ErrConnClosed
	}
	c.conn = conn
	c.w = w
	c.session = ack.Session
	c.mu.Unlock()
	if ack.Resumed {
		c.met.resumes.Inc()
	}
	return r, nil
}

// writeFrame writes and flushes one frame on the current connection. On
// failure the connection is closed so the reader notices and reconnects.
func (c *Conn) writeFrame(frame []byte) error {
	c.mu.Lock()
	conn, w := c.conn, c.w
	if conn == nil {
		c.mu.Unlock()
		if c.err != nil {
			return c.err
		}
		return nil // reconnecting; pending state will be retransmitted
	}
	err := w.WriteFrame(frame)
	if err == nil {
		err = w.Flush()
	}
	c.mu.Unlock()
	if err != nil {
		conn.Close()
	} else {
		c.met.framesOut.Inc()
	}
	return nil
}

// nextID returns the next client sequence number (used for both publish
// pseqs and control request ids; the namespaces are independent but a
// shared counter keeps both strictly increasing).
func (c *Conn) nextID() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextSeq++
	return c.nextSeq
}

// Publish sends one event and waits for the broker's acknowledgement.
// If the connection drops first, the publish is retransmitted on resume
// and the server's dedup window guarantees it enters the broker at most
// once.
func (c *Conn) Publish(ev workload.Event) error {
	_, err := c.PublishSeq(ev)
	return err
}

// PublishSeq is Publish reporting the broker publication sequence the
// event consumed (deliveries of the event carry the same seq), or -1 when
// the event never entered the broker's history. Like the in-process
// broker's PublishSeq, a non-negative seq may accompany an error — the
// remote broker consumed (and possibly journaled) the seq before failing.
func (c *Conn) PublishSeq(ev workload.Event) (int64, error) {
	pseq := c.nextID()
	frame := wire.AppendPublish(nil, wire.Publish{PSeq: pseq, Ev: ev})
	p := &pending{frame: frame, done: make(chan string, 1), extra: make(chan int64, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return -1, c.terminalErr()
	}
	c.pubs[pseq] = p
	c.mu.Unlock()
	if err := c.writeFrame(frame); err != nil {
		return -1, err
	}
	c.met.publishes.Inc()
	msg, ok := <-p.done
	if !ok {
		return -1, c.terminalErr()
	}
	seq := <-p.extra
	if msg != "" {
		return seq, errors.New(msg)
	}
	return seq, nil
}

// Subscribe registers an interest rectangle for owner and returns the
// broker slot. Retransmitted transparently across reconnects; the server
// caches the reply by request id so the side effect happens once.
func (c *Conn) Subscribe(owner topology.NodeID, rect space.Rect) (int64, error) {
	reqID := c.nextID()
	frame := wire.AppendSubscribe(nil, wire.Subscribe{ReqID: reqID, Owner: owner, Rect: rect})
	p := &pending{frame: frame, done: make(chan string, 1), extra: make(chan int64, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, c.terminalErr()
	}
	c.ctrl[reqID] = p
	c.mu.Unlock()
	if err := c.writeFrame(frame); err != nil {
		return 0, err
	}
	msg, ok := <-p.done
	if !ok {
		return 0, c.terminalErr()
	}
	if msg != "" {
		return 0, errors.New(msg)
	}
	return <-p.extra, nil
}

// Unsubscribe releases a slot returned by Subscribe.
func (c *Conn) Unsubscribe(slot int64) error {
	reqID := c.nextID()
	frame := wire.AppendUnsubscribe(nil, wire.Unsubscribe{ReqID: reqID, Slot: slot})
	p := &pending{frame: frame, done: make(chan string, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return c.terminalErr()
	}
	c.ctrl[reqID] = p
	c.mu.Unlock()
	if err := c.writeFrame(frame); err != nil {
		return err
	}
	msg, ok := <-p.done
	if !ok {
		return c.terminalErr()
	}
	if msg != "" {
		return errors.New(msg)
	}
	return nil
}

// Ping round-trips a frame through the server. It completes even when
// delivery credits are exhausted — control traffic is never gated.
func (c *Conn) Ping(timeout time.Duration) error {
	nonce := uint64(c.nextID())
	ch := make(chan struct{}, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return c.terminalErr()
	}
	c.pings[nonce] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pings, nonce)
		c.mu.Unlock()
	}()
	if err := c.writeFrame(wire.AppendPing(nil, nonce)); err != nil {
		return err
	}
	select {
	case <-ch:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("transport: ping timeout after %v", timeout)
	case <-c.readerDone:
		return c.terminalErr()
	}
}

// Recv returns the next delivery, blocking until one arrives or the
// connection terminates (ok = false). Consuming a delivery returns its
// flow-control credit to the server once a quarter-window has
// accumulated.
func (c *Conn) Recv() (wire.Deliver, bool) {
	d, ok := <-c.recv
	if !ok {
		return wire.Deliver{}, false
	}
	c.creditConsumed(1)
	return d, true
}

// TryRecv is Recv without blocking.
func (c *Conn) TryRecv() (wire.Deliver, bool) {
	select {
	case d, ok := <-c.recv:
		if !ok {
			return wire.Deliver{}, false
		}
		c.creditConsumed(1)
		return d, true
	default:
		return wire.Deliver{}, false
	}
}

// creditConsumed accumulates returned credits and flushes them to the
// server as a cumulative ack when a quarter of the window is owed.
func (c *Conn) creditConsumed(n int64) {
	c.mu.Lock()
	c.owed += n
	flush := int64(0)
	if c.owed >= int64(c.cfg.Credits/4)+1 {
		flush = c.owed
		c.owed = 0
	}
	c.mu.Unlock()
	if flush > 0 {
		c.writeFrame(wire.AppendAck(nil, wire.Ack{Did: c.lastDid.Load(), Credit: uint32(flush)}))
	}
}

// Bounce force-closes the underlying connection, exercising the
// reconnect-and-resume path. The session survives; in-flight state is
// retransmitted.
func (c *Conn) Bounce() {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// Session returns the server-assigned session token.
func (c *Conn) Session() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// Draining reports whether the server announced a graceful drain.
func (c *Conn) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drain
}

// Err returns the terminal error after the connection ends (nil after a
// clean goodbye or Close).
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == ErrConnClosed {
		return nil
	}
	return c.err
}

func (c *Conn) terminalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrConnClosed
}

// Close ends the session: a goodbye is sent best-effort, pending calls
// fail with ErrConnClosed, and Recv drains whatever was buffered then
// reports closed.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.err == nil {
		c.err = ErrConnClosed
	}
	conn, w := c.conn, c.w
	c.mu.Unlock()
	if conn != nil {
		if w != nil {
			c.mu.Lock()
			w.WriteFrame(wire.AppendGoodbye(nil))
			w.Flush()
			c.mu.Unlock()
		}
		conn.Close()
	}
	<-c.readerDone
	return nil
}

// fail terminates the connection with err, completing every pending call.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.w = nil
	pubs, ctrl, pings := c.pubs, c.ctrl, c.pings
	c.pubs = map[int64]*pending{}
	c.ctrl = map[int64]*pending{}
	c.pings = map[uint64]chan struct{}{}
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	for _, p := range pubs {
		close(p.done)
	}
	for _, p := range ctrl {
		close(p.done)
	}
	for _, ch := range pings {
		close(ch)
	}
}

// readLoop consumes inbound frames, reconnecting on connection failure
// until Close, a server goodbye, or the reconnect budget is spent. It is
// the only closer of c.recv.
func (c *Conn) readLoop(r *wire.Reader) {
	defer close(c.readerDone)
	defer close(c.recv)
	// Deliver-batch scratch: deliveries are copied into c.recv by value,
	// so one backing array serves every frame on this connection.
	var batchBuf []wire.Deliver
	for {
		payload, err := r.ReadFrame()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			nr, rerr := c.reconnect()
			if rerr != nil {
				c.fail(rerr)
				return
			}
			r = nr
			continue
		}
		c.met.framesIn.Inc()
		switch wire.MsgType(payload) {
		case wire.TypeDeliver:
			batch, err := wire.DecodeDeliverBatchInto(payload, batchBuf[:0])
			if err != nil {
				c.fail(fmt.Errorf("transport: bad deliver frame: %w", err))
				return
			}
			c.deliver(batch)
			batchBuf = batch
		case wire.TypePubAck:
			m, err := wire.DecodePubAck(payload)
			if err != nil {
				c.fail(fmt.Errorf("transport: bad puback: %w", err))
				return
			}
			c.mu.Lock()
			p := c.pubs[m.PSeq]
			delete(c.pubs, m.PSeq)
			c.mu.Unlock()
			if p != nil {
				if p.extra != nil {
					p.extra <- m.Seq
				}
				p.done <- m.Err
			}
		case wire.TypeSubscribed:
			m, err := wire.DecodeSubscribed(payload)
			if err != nil {
				c.fail(fmt.Errorf("transport: bad subscribed: %w", err))
				return
			}
			c.mu.Lock()
			p := c.ctrl[m.ReqID]
			delete(c.ctrl, m.ReqID)
			c.mu.Unlock()
			if p != nil {
				if p.extra != nil {
					p.extra <- m.Slot
				}
				p.done <- m.Err
			}
		case wire.TypeUnsubscribed:
			m, err := wire.DecodeUnsubscribed(payload)
			if err != nil {
				c.fail(fmt.Errorf("transport: bad unsubscribed: %w", err))
				return
			}
			c.mu.Lock()
			p := c.ctrl[m.ReqID]
			delete(c.ctrl, m.ReqID)
			c.mu.Unlock()
			if p != nil {
				p.done <- m.Err
			}
		case wire.TypePong:
			nonce, err := wire.DecodePong(payload)
			if err != nil {
				c.fail(fmt.Errorf("transport: bad pong: %w", err))
				return
			}
			c.mu.Lock()
			ch := c.pings[nonce]
			delete(c.pings, nonce)
			c.mu.Unlock()
			if ch != nil {
				ch <- struct{}{}
			}
		case wire.TypeDrain:
			c.mu.Lock()
			c.drain = true
			c.mu.Unlock()
		case wire.TypeGoodbye:
			// Clean server-side end of session: Err() reports nil.
			c.fail(ErrConnClosed)
			return
		case wire.TypeError:
			m, err := wire.DecodeError(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.fail(fmt.Errorf("transport: server error (code %d): %s", m.Code, m.Msg))
			return
		default:
			c.fail(fmt.Errorf("transport: unexpected frame type %d", wire.MsgType(payload)))
			return
		}
	}
}

// deliver pushes a decoded batch to the receiver, skipping duplicates
// (did at or below the watermark) and crediting them straight back so
// the window cannot leak.
func (c *Conn) deliver(batch []wire.Deliver) {
	for _, d := range batch {
		if d.Did <= c.lastDid.Load() {
			c.met.redeliveries.Inc()
			c.creditConsumed(1) // server spent a credit on a dup; return it
			continue
		}
		c.lastDid.Store(d.Did)
		c.met.deliveries.Inc()
		// Never blocks: recv capacity equals the credit window and the
		// server never exceeds the credits we granted.
		c.recv <- d
	}
}

// reconnect re-establishes the connection with exponential backoff and
// resumes the session, retransmitting every pending publish and control
// request (in id order — the server dedups them).
func (c *Conn) reconnect() (*wire.Reader, error) {
	c.mu.Lock()
	session := c.session
	c.conn = nil
	c.w = nil
	c.owed = 0 // the resume hello re-baselines the credit window
	c.mu.Unlock()

	backoff := c.cfg.ReconnectBase
	for attempt := 0; c.cfg.MaxReconnects < 0 || attempt < c.cfg.MaxReconnects; attempt++ {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, ErrConnClosed
		}
		if attempt > 0 {
			time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff/2)+1)))
			backoff *= 2
			if backoff > c.cfg.ReconnectMax {
				backoff = c.cfg.ReconnectMax
			}
		}
		// Grant only the window the buffered-but-unconsumed deliveries
		// leave free.
		credits := c.cfg.Credits - len(c.recv)
		if credits < 1 {
			credits = 1
		}
		r, err := c.connect(session, c.lastDid.Load(), uint32(credits))
		if err != nil {
			if isTransient(err) {
				continue
			}
			return nil, err // session rejected, version mismatch, ...
		}
		c.retransmit()
		return r, nil
	}
	return nil, fmt.Errorf("transport: reconnect to %s failed after %d attempts", c.cfg.Addr, c.cfg.MaxReconnects)
}

// retransmit replays pending publishes and control requests after a
// resume, in id order so the server's windows see them in sequence.
func (c *Conn) retransmit() {
	c.mu.Lock()
	ids := make([]int64, 0, len(c.pubs)+len(c.ctrl))
	frames := make(map[int64][]byte, len(c.pubs)+len(c.ctrl))
	for id, p := range c.pubs {
		ids = append(ids, id)
		frames[id] = p.frame
	}
	for id, p := range c.ctrl {
		ids = append(ids, id)
		frames[id] = p.frame
	}
	c.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c.writeFrame(frames[id])
	}
}
