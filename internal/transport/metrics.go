package transport

import (
	"net"

	"repro/internal/telemetry"
)

// metrics caches the transport's telemetry handles (scope "wire" for the
// server, "wire_client" for clients) so the frame hot paths never touch a
// registry map.
type metrics struct {
	bytesIn   *telemetry.Counter
	bytesOut  *telemetry.Counter
	framesIn  *telemetry.Counter
	framesOut *telemetry.Counter

	connsAccepted  *telemetry.Counter
	connsActive    *telemetry.Gauge
	sessionsActive *telemetry.Gauge
	resumes        *telemetry.Counter
	expired        *telemetry.Counter

	publishes    *telemetry.Counter
	publishDups  *telemetry.Counter
	deliveries   *telemetry.Counter
	redeliveries *telemetry.Counter

	creditStalls   *telemetry.Counter
	dispatchStalls *telemetry.Counter
	badFrames      *telemetry.Counter
	versionReject  *telemetry.Counter

	// writeNs is the per-flush wall time on a connection writer — the
	// conn-level write latency whose p99 the bench records.
	writeNs *telemetry.Histogram
	// flushBytes / flushFrames size each coalesced flush.
	flushBytes  *telemetry.Histogram
	flushFrames *telemetry.Histogram
	// batchSize is the number of deliveries coalesced per deliver frame.
	batchSize *telemetry.Histogram
}

func newMetrics(reg *telemetry.Registry, scope string) *metrics {
	s := reg.Scope(scope)
	return &metrics{
		bytesIn:        s.Counter("bytes_in"),
		bytesOut:       s.Counter("bytes_out"),
		framesIn:       s.Counter("frames_in"),
		framesOut:      s.Counter("frames_out"),
		connsAccepted:  s.Counter("conns_accepted"),
		connsActive:    s.Gauge("conns_active"),
		sessionsActive: s.Gauge("sessions_active"),
		resumes:        s.Counter("session_resumes"),
		expired:        s.Counter("sessions_expired"),
		publishes:      s.Counter("publishes"),
		publishDups:    s.Counter("publish_dups"),
		deliveries:     s.Counter("deliveries_sent"),
		redeliveries:   s.Counter("redeliveries_sent"),
		creditStalls:   s.Counter("credit_stalls"),
		dispatchStalls: s.Counter("dispatch_stalls"),
		badFrames:      s.Counter("bad_frames"),
		versionReject:  s.Counter("version_rejects"),
		writeNs:        s.Histogram("write_ns", telemetry.LatencyBuckets()),
		flushBytes:     s.Histogram("flush_bytes", telemetry.PowerOfTwoBuckets(16, 16)),
		flushFrames:    s.Histogram("flush_frames", telemetry.LinearBuckets(0, 4, 16)),
		batchSize:      s.Histogram("deliver_batch_size", telemetry.LinearBuckets(0, 4, 16)),
	}
}

// countingConn counts raw wire bytes (ciphertext when TLS wraps it) into
// the transport's byte counters.
type countingConn struct {
	net.Conn
	in, out *telemetry.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}
