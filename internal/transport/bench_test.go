package transport_test

import (
	"sync"
	"testing"

	"repro/internal/broker"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

// benchPipelineDepth is how many publishes are kept in flight at once in
// the throughput benchmarks, for both the wire and in-process variants.
const benchPipelineDepth = 64

// BenchmarkWirePublishDeliver measures end-to-end publish→deliver
// throughput over the loopback TCP transport: framing, CRCs, credit
// accounting, coalesced flushes, and both protocol round-trips included.
// Compare against BenchmarkInprocPublishDeliver for the wire overhead.
func BenchmarkWirePublishDeliver(b *testing.B) {
	addr, _, w, _ := startServer(b, transport.Config{SessionBuffer: 8192}, 500)
	c, err := transport.Dial(transport.ClientConfig{Addr: addr, Credits: 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Subscribe(17, allSpace(w)); err != nil {
		b.Fatal(err)
	}
	events := w.Events(512, 501)

	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		got := 0
		for got < b.N {
			d, ok := c.Recv()
			if !ok {
				b.Errorf("connection closed after %d/%d deliveries: %v", got, b.N, c.Err())
				return
			}
			if d.Interested {
				got++
			}
		}
	}()
	sem := make(chan struct{}, benchPipelineDepth)
	var wg sync.WaitGroup
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Publish(ev); err != nil {
				b.Error(err)
			}
			<-sem
		}()
	}
	wg.Wait()
	<-done
	b.StopTimer()
}

// BenchmarkInprocPublishDeliver is the in-process baseline for the wire
// benchmark: the same engine, broker, and full-space subscription, with
// deliveries observed directly instead of crossing a socket.
func BenchmarkInprocPublishDeliver(b *testing.B) {
	e, w := testWorld(b, 510)
	const owner = topology.NodeID(17)
	var mu sync.Mutex
	got := 0
	target := 0
	done := make(chan struct{})
	bk, err := broker.New(e, broker.WithWorkers(2),
		broker.WithObserver(func(n topology.NodeID, d broker.Delivery) {
			if n != owner || !d.Interested {
				return
			}
			mu.Lock()
			got++
			if got == target {
				close(done)
			}
			mu.Unlock()
		}))
	if err != nil {
		b.Fatal(err)
	}
	defer bk.Close()
	if _, err := bk.Subscribe(workload.Subscription{Owner: owner, Rect: allSpace(w)}); err != nil {
		b.Fatal(err)
	}
	events := w.Events(512, 511)

	mu.Lock()
	target = b.N
	mu.Unlock()
	b.ResetTimer()
	sem := make(chan struct{}, benchPipelineDepth)
	var wg sync.WaitGroup
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := bk.Publish(ev); err != nil {
				b.Error(err)
			}
			<-sem
		}()
	}
	wg.Wait()
	<-done
	b.StopTimer()
}
