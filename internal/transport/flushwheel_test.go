package transport

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// TestFlushWheelFires proves the shared wheel delivers one fire per arm:
// flushDue set, flushArmed cleared, waiters woken.
func TestFlushWheelFires(t *testing.T) {
	srv := NewServer(Config{FlushWindow: time.Millisecond})
	defer srv.finishClose()
	var sessions []*session
	for i := 0; i < 3; i++ {
		s := newSession(srv, uint64(i+1), 16)
		s.flushArmed = true
		sessions = append(sessions, s)
		s.mu.Lock()
		srv.wheel.arm(s)
		s.mu.Unlock()
	}
	deadline := time.Now().Add(2 * time.Second)
	for _, s := range sessions {
		for {
			s.mu.Lock()
			due, armed := s.flushDue, s.flushArmed
			s.mu.Unlock()
			if due && !armed {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("session %d never fired (due=%v armed=%v)", s.token, due, armed)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// TestFlushWheelStop pins shutdown: a stopped wheel's runner exits and a
// late arm never fires (the sessions it would wake are dead anyway).
func TestFlushWheelStop(t *testing.T) {
	srv := NewServer(Config{FlushWindow: time.Millisecond})
	wheel := srv.wheel
	srv.finishClose()
	s := newSession(srv, 1, 16)
	wheel.arm(s) // must not panic or fire
	time.Sleep(5 * time.Millisecond)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.flushDue {
		t.Error("stopped wheel fired an armed session")
	}
}

// TestFlushWindowStillCoalesces drives a burst through one session and
// checks the wheel path preserves the coalescing contract: deliveries
// are not written before the window fires (flushDue gate) unless a full
// batch accumulates.
func TestFlushWindowStillCoalesces(t *testing.T) {
	srv := NewServer(Config{FlushWindow: 50 * time.Millisecond, MaxBatch: 64})
	defer srv.finishClose()
	s := newSession(srv, 1, 1024)
	s.mu.Lock()
	s.queue = append(s.queue, wireDeliverN(4)...)
	ready := s.deliveriesReadyLocked()
	s.mu.Unlock()
	if ready {
		t.Fatal("partial batch ready before the flush window fired")
	}
	s.flushFire()
	s.mu.Lock()
	ready = s.deliveriesReadyLocked()
	s.mu.Unlock()
	if !ready {
		t.Fatal("batch not ready after the flush window fired")
	}
	// A full batch bypasses the window entirely.
	s2 := newSession(srv, 2, 1024)
	s2.mu.Lock()
	s2.queue = append(s2.queue, wireDeliverN(64)...)
	ready = s2.deliveriesReadyLocked()
	s2.mu.Unlock()
	if !ready {
		t.Fatal("full batch still waiting on the flush window")
	}
}

func wireDeliverN(n int) []wire.Deliver {
	return make([]wire.Deliver, n)
}
