package transport

import (
	"sync"
	"time"
)

// flushWheel schedules flush-window deadlines for every session on one
// goroutine. All deadlines share the same delay (the server's
// FlushWindow), so the queue is FIFO with ascending deadlines — a
// degenerate calendar queue: the runner sleeps until the head is due,
// fires it, and repeats. This replaces a per-writer sleep on every
// delivery burst with a single timer for the whole server, keeping the
// per-connection cost flat no matter how many sessions coalesce bursts
// at once.
type flushWheel struct {
	window time.Duration

	mu     sync.Mutex
	cond   *sync.Cond
	q      []flushEntry
	closed bool
}

type flushEntry struct {
	s        *session
	deadline time.Time
}

func newFlushWheel(window time.Duration) *flushWheel {
	fw := &flushWheel{window: window}
	fw.cond = sync.NewCond(&fw.mu)
	go fw.run()
	return fw
}

// arm schedules s's flush deadline one window from now. Called with the
// session's mu held (lock order: session.mu → wheel.mu, never reversed —
// the runner releases wheel.mu before touching a session).
func (fw *flushWheel) arm(s *session) {
	fw.mu.Lock()
	fw.q = append(fw.q, flushEntry{s: s, deadline: time.Now().Add(fw.window)})
	fw.cond.Signal()
	fw.mu.Unlock()
}

func (fw *flushWheel) stop() {
	fw.mu.Lock()
	fw.closed = true
	fw.cond.Signal()
	fw.mu.Unlock()
}

func (fw *flushWheel) run() {
	var due []flushEntry
	for {
		fw.mu.Lock()
		for len(fw.q) == 0 && !fw.closed {
			fw.cond.Wait()
		}
		if fw.closed {
			fw.mu.Unlock()
			return
		}
		now := time.Now()
		if wait := fw.q[0].deadline.Sub(now); wait > 0 {
			fw.mu.Unlock()
			// Bounded by the window (sub-millisecond by default); new
			// arrivals land behind the head, so no wake-up is missed.
			time.Sleep(wait)
			continue
		}
		// Pop everything due — bursts arm many sessions within one window.
		n := 0
		for n < len(fw.q) && !fw.q[n].deadline.After(now) {
			n++
		}
		due = append(due[:0], fw.q[:n]...)
		fw.q = append(fw.q[:0], fw.q[n:]...)
		fw.mu.Unlock()
		for i := range due {
			due[i].s.flushFire()
			due[i].s = nil
		}
	}
}
