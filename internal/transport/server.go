// Package transport carries the broker over TCP: a Server that wraps a
// broker.Broker behind the wire protocol, and a client Conn that speaks
// it. The transport extends the in-process guarantees end to end —
// credit-based flow control chains a slow remote subscriber back through
// the broker's bounded queues to admission control at the publish edge,
// and session resumption plus both-direction dedup windows preserve
// exactly-once delivery across connection drops.
package transport

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/wire"
	"repro/internal/workload"
)

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("transport: server closed")

// Backend is the decision fabric a Server bridges to the wire: the
// in-process broker.Broker is the canonical implementation, and a
// federation router (internal/federate) that partitions the subscription
// space across shards satisfies the same surface, so one daemon can serve
// either. Deliveries flow the other way — register the Server's Dispatch
// as the backend's delivery observer.
type Backend interface {
	// PublishSeq admits one event, reporting the publication sequence it
	// consumed (-1 when it never entered the backend's history).
	PublishSeq(ev workload.Event) (int64, error)
	// Subscribe registers an interest rectangle and returns its slot.
	Subscribe(s workload.Subscription) (int, error)
	// Unsubscribe releases a slot returned by Subscribe.
	Unsubscribe(slot int) error
	// Close drains and stops the backend.
	Close() error
}

// Backend conformance is pinned where the implementations live; the
// broker's is asserted here to keep the contract obvious.
var _ Backend = (*broker.Broker)(nil)

// Config tunes a Server. The zero value is usable: every field has a
// default applied by NewServer.
type Config struct {
	// TLS, when set, wraps every accepted connection.
	TLS *tls.Config
	// Registry receives transport telemetry under scope "wire"; nil uses
	// a private registry.
	Registry *telemetry.Registry
	// FlushWindow is how long a connection writer lingers after the first
	// delivery of a burst to coalesce followers into one flush
	// (default 200µs; negative disables).
	FlushWindow time.Duration
	// MaxBatch caps deliveries per deliver frame (default 64).
	MaxBatch int
	// MaxFrame caps accepted frame payloads (default wire.DefaultMaxFrame).
	MaxFrame int
	// SessionBuffer bounds queued-plus-unacked deliveries per session;
	// beyond it the broker's dispatch blocks — the backpressure edge
	// (default 1024).
	SessionBuffer int
	// SessionTimeout is how long a disconnected session awaits resumption
	// before its subscriptions are dropped (default 10s).
	SessionTimeout time.Duration
	// PubDedupWindow sizes the per-session publish dedup window
	// (default 4096).
	PubDedupWindow int
	// HandshakeTimeout bounds the hello exchange (default 5s).
	HandshakeTimeout time.Duration
	// ReplHandler, when set, receives connections whose first frame is a
	// replication hello (a follower dialing in), letting client traffic
	// and journal shipping share one listener. The handler owns the
	// connection and blocks until the replication session ends — wire a
	// replicate.Leader's Accept here. Shutdown waits for it like any
	// other connection, so stop the leader first.
	ReplHandler func(conn net.Conn, r *wire.Reader, w *wire.Writer, hello wire.ReplHello)
}

func (c *Config) fill() {
	if c.FlushWindow == 0 {
		c.FlushWindow = 200 * time.Microsecond
	}
	if c.FlushWindow < 0 {
		c.FlushWindow = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.SessionBuffer <= 0 {
		c.SessionBuffer = 1024
	}
	if c.SessionTimeout == 0 {
		c.SessionTimeout = 10 * time.Second
	}
	if c.PubDedupWindow <= 0 {
		c.PubDedupWindow = 4096
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
}

// Server accepts wire-protocol connections and bridges them to a
// broker.Broker. Construct with NewServer, register Dispatch as the
// broker's observer, then call Serve.
type Server struct {
	cfg Config
	met *metrics

	mu        sync.Mutex
	b         Backend
	ln        net.Listener
	sessions  map[uint64]*session
	byNode    map[topology.NodeID]map[*session]int // refcount of slots per session
	nextToken uint64
	draining  bool
	closed    bool

	// wheel schedules flush-window deadlines for every session on one
	// goroutine (nil when FlushWindow is disabled).
	wheel *flushWheel

	wg sync.WaitGroup
}

// NewServer builds a Server from cfg. The broker is supplied at Serve so
// the usual construction order is NewServer → broker.New(engine,
// broker.WithObserver(srv.Dispatch), ...) → srv.Serve(ln, b).
func NewServer(cfg Config) *Server {
	cfg.fill()
	srv := &Server{
		cfg:      cfg,
		met:      newMetrics(cfg.Registry, "wire"),
		sessions: make(map[uint64]*session),
		byNode:   make(map[topology.NodeID]map[*session]int),
	}
	if cfg.FlushWindow > 0 {
		srv.wheel = newFlushWheel(cfg.FlushWindow)
	}
	return srv
}

// Telemetry returns the registry transport metrics land in.
func (srv *Server) Telemetry() *telemetry.Registry { return srv.cfg.Registry }

// Dispatch is the broker observer: it forwards an accepted delivery to
// every session subscribed as node n. It runs on broker consumer
// goroutines and blocks when a session's buffer is full, which is exactly
// the backpressure chain the transport exists to extend.
func (srv *Server) Dispatch(n topology.NodeID, d broker.Delivery) {
	srv.mu.Lock()
	var targets []*session
	for s := range srv.byNode[n] {
		targets = append(targets, s)
	}
	srv.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	wd := wire.Deliver{
		Node:       n,
		Seq:        d.Seq,
		Ev:         d.Event,
		Method:     byte(d.Method),
		Group:      int32(d.Group),
		Interested: d.Interested,
	}
	for _, s := range targets {
		s.enqueue(wd)
	}
}

// Serve accepts connections on ln, speaking to b, until Shutdown or
// Close. It always returns a non-nil error; after a graceful stop that
// error is ErrServerClosed.
func (srv *Server) Serve(ln net.Listener, b Backend) error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return ErrServerClosed
	}
	srv.b = b
	srv.ln = ln
	srv.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			srv.mu.Lock()
			stopped := srv.draining || srv.closed
			srv.mu.Unlock()
			if stopped {
				srv.wg.Wait()
				return ErrServerClosed
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		srv.met.connsAccepted.Inc()
		srv.wg.Add(1)
		go srv.handle(conn)
	}
}

// handle owns one accepted connection: handshake, then the read loop.
func (srv *Server) handle(raw net.Conn) {
	defer srv.wg.Done()
	srv.met.connsActive.Add(1)
	defer srv.met.connsActive.Add(-1)

	conn := net.Conn(&countingConn{Conn: raw, in: srv.met.bytesIn, out: srv.met.bytesOut})
	if srv.cfg.TLS != nil {
		conn = tls.Server(conn, srv.cfg.TLS)
	}
	r := wire.NewReader(conn, srv.cfg.MaxFrame)
	w := wire.NewWriter(conn, srv.cfg.MaxFrame)

	sess, gen, ok := srv.handshake(conn, r, w)
	if !ok {
		conn.Close()
		return
	}
	srv.readLoop(sess, gen, conn, r)
}

// writeDirect writes one frame outside any session writer — used during
// the handshake, before a writer goroutine exists.
func writeDirect(w *wire.Writer, frame []byte) error {
	if err := w.WriteFrame(frame); err != nil {
		return err
	}
	return w.Flush()
}

// handshake reads the client hello and either binds the connection to a
// (new or resumed) session or rejects it with an error frame.
func (srv *Server) handshake(conn net.Conn, r *wire.Reader, w *wire.Writer) (*session, int, bool) {
	conn.SetDeadline(time.Now().Add(srv.cfg.HandshakeTimeout))
	defer conn.SetDeadline(time.Time{})

	payload, err := r.ReadFrame()
	if err != nil {
		srv.met.badFrames.Inc()
		return nil, 0, false
	}
	if srv.cfg.ReplHandler != nil && wire.MsgType(payload) == wire.TypeReplHello {
		rh, err := wire.DecodeReplHello(payload)
		if err != nil {
			srv.met.badFrames.Inc()
			return nil, 0, false
		}
		conn.SetDeadline(time.Time{})
		// Ownership transfers: the handler blocks for the replication
		// session's lifetime and closes the conn (handle's close after the
		// false return is a harmless double close).
		srv.cfg.ReplHandler(conn, r, w, rh)
		return nil, 0, false
	}
	hello, err := wire.DecodeHello(payload)
	if err != nil {
		srv.met.badFrames.Inc()
		writeDirect(w, wire.AppendError(nil, wire.ErrorMsg{Code: wire.CodeBadFrame, Msg: err.Error()}))
		return nil, 0, false
	}
	if hello.Version != wire.Version {
		srv.met.versionReject.Inc()
		writeDirect(w, wire.AppendError(nil, wire.ErrorMsg{
			Code: wire.CodeVersion,
			Msg:  fmt.Sprintf("server speaks wire v%d, client sent v%d", wire.Version, hello.Version),
		}))
		return nil, 0, false
	}

	srv.mu.Lock()
	if srv.draining || srv.closed {
		srv.mu.Unlock()
		writeDirect(w, wire.AppendError(nil, wire.ErrorMsg{Code: wire.CodeDraining, Msg: "server draining"}))
		return nil, 0, false
	}
	var sess *session
	resumed := false
	if hello.Session == 0 {
		srv.nextToken++
		sess = newSession(srv, srv.nextToken, hello.Credits)
		srv.sessions[sess.token] = sess
		srv.met.sessionsActive.Add(1)
	} else {
		sess = srv.sessions[hello.Session]
		if sess == nil {
			srv.mu.Unlock()
			writeDirect(w, wire.AppendError(nil, wire.ErrorMsg{Code: wire.CodeSession, Msg: "unknown or expired session"}))
			return nil, 0, false
		}
		resumed = true
		srv.met.resumes.Inc()
	}
	srv.mu.Unlock()

	ack := wire.AppendHelloAck(nil, wire.HelloAck{Version: wire.Version, Session: sess.token, Resumed: resumed})
	if err := writeDirect(w, ack); err != nil {
		if !resumed {
			srv.endSession(sess)
		}
		return nil, 0, false
	}
	gen := sess.attach(conn, w, hello.LastDid, hello.Credits)
	return sess, gen, true
}

// readLoop dispatches inbound frames for one connection until it fails
// or the client says goodbye. Bad frames drop the connection but keep
// the session resumable.
func (srv *Server) readLoop(sess *session, gen int, conn net.Conn, r *wire.Reader) {
	for {
		payload, err := r.ReadFrame()
		if err != nil {
			if errors.Is(err, wire.ErrOversize) || errors.Is(err, wire.ErrChecksum) || errors.Is(err, wire.ErrTruncated) {
				srv.met.badFrames.Inc()
			}
			sess.detach(gen)
			return
		}
		srv.met.framesIn.Inc()
		switch wire.MsgType(payload) {
		case wire.TypeSubscribe:
			m, err := wire.DecodeSubscribe(payload)
			if err != nil {
				srv.met.badFrames.Inc()
				sess.detach(gen)
				return
			}
			srv.handleSubscribe(sess, m)
		case wire.TypeUnsubscribe:
			m, err := wire.DecodeUnsubscribe(payload)
			if err != nil {
				srv.met.badFrames.Inc()
				sess.detach(gen)
				return
			}
			srv.handleUnsubscribe(sess, m)
		case wire.TypePublish:
			m, err := wire.DecodePublish(payload)
			if err != nil {
				srv.met.badFrames.Inc()
				sess.detach(gen)
				return
			}
			srv.handlePublish(sess, m)
		case wire.TypeAck:
			m, err := wire.DecodeAck(payload)
			if err != nil {
				srv.met.badFrames.Inc()
				sess.detach(gen)
				return
			}
			sess.ack(m.Did, m.Credit)
		case wire.TypeCredit:
			n, err := wire.DecodeCredit(payload)
			if err != nil {
				srv.met.badFrames.Inc()
				sess.detach(gen)
				return
			}
			sess.grantCredit(n)
		case wire.TypePing:
			nonce, err := wire.DecodePing(payload)
			if err != nil {
				srv.met.badFrames.Inc()
				sess.detach(gen)
				return
			}
			sess.sendCtrl(wire.AppendPong(nil, nonce))
		case wire.TypeGoodbye:
			srv.endSession(sess)
			return
		default:
			srv.met.badFrames.Inc()
			sess.detach(gen)
			return
		}
	}
}

// handleSubscribe registers one interest rectangle with the broker and
// replies. Retransmitted request ids return the cached reply without
// repeating the side effect.
func (srv *Server) handleSubscribe(sess *session, m wire.Subscribe) {
	if cached := sess.cachedCtrlReply(m.ReqID); cached != nil {
		sess.sendCtrl(cached)
		return
	}
	reply := wire.Subscribed{ReqID: m.ReqID}
	srv.mu.Lock()
	draining := srv.draining
	b := srv.b
	srv.mu.Unlock()
	if draining {
		reply.Err = "server draining"
	} else {
		slot, err := b.Subscribe(workloadSub(m))
		if err != nil {
			reply.Err = err.Error()
		} else {
			reply.Slot = int64(slot)
			srv.mu.Lock()
			sess.mu.Lock()
			if sess.dead {
				sess.mu.Unlock()
				srv.mu.Unlock()
				// Session died while we were subscribing: undo.
				b.Unsubscribe(slot)
				return
			}
			sess.slots[int64(slot)] = m.Owner
			sess.mu.Unlock()
			set := srv.byNode[m.Owner]
			if set == nil {
				set = make(map[*session]int)
				srv.byNode[m.Owner] = set
			}
			set[sess]++
			srv.mu.Unlock()
		}
	}
	frame := wire.AppendSubscribed(nil, reply)
	sess.cacheCtrlReply(m.ReqID, frame)
	sess.sendCtrl(frame)
}

// handleUnsubscribe releases a slot owned by this session.
func (srv *Server) handleUnsubscribe(sess *session, m wire.Unsubscribe) {
	if cached := sess.cachedCtrlReply(m.ReqID); cached != nil {
		sess.sendCtrl(cached)
		return
	}
	reply := wire.Unsubscribed{ReqID: m.ReqID}
	sess.mu.Lock()
	owner, ok := sess.slots[m.Slot]
	if ok {
		delete(sess.slots, m.Slot)
	}
	sess.mu.Unlock()
	if !ok {
		reply.Err = "unknown slot"
	} else {
		srv.mu.Lock()
		b := srv.b
		srv.dropNodeRef(sess, owner)
		srv.mu.Unlock()
		if err := b.Unsubscribe(int(m.Slot)); err != nil {
			reply.Err = err.Error()
		}
	}
	frame := wire.AppendUnsubscribed(nil, reply)
	sess.cacheCtrlReply(m.ReqID, frame)
	sess.sendCtrl(frame)
}

// workloadSub converts a wire subscribe into the broker's subscription.
func workloadSub(m wire.Subscribe) workload.Subscription {
	return workload.Subscription{Owner: m.Owner, Rect: m.Rect}
}

// dropNodeRef decrements sess's slot refcount under node owner. Caller
// holds srv.mu.
func (srv *Server) dropNodeRef(sess *session, owner topology.NodeID) {
	if set := srv.byNode[owner]; set != nil {
		if set[sess]--; set[sess] <= 0 {
			delete(set, sess)
			if len(set) == 0 {
				delete(srv.byNode, owner)
			}
		}
	}
}

// handlePublish feeds one client publication into the broker, deduping
// retransmitted publish sequence numbers so a retry after a reconnect
// enters the broker exactly once. The dedup window records a pseq only
// after the broker accepted it — a failed publish stays retryable.
func (srv *Server) handlePublish(sess *session, m wire.Publish) {
	reply := wire.PubAck{PSeq: m.PSeq, Seq: -1}
	sess.mu.Lock()
	dup := sess.pubWin.Seen(m.PSeq)
	sess.mu.Unlock()
	if dup {
		srv.met.publishDups.Inc()
		// Replay the original ack when it is still cached, so a client
		// whose ack was lost in a disconnect still learns the broker seq
		// its publish consumed.
		if cached := sess.cachedCtrlReply(m.PSeq); cached != nil {
			sess.sendCtrl(cached)
			return
		}
		sess.sendCtrl(wire.AppendPubAck(nil, reply))
		return
	}
	srv.mu.Lock()
	draining := srv.draining
	b := srv.b
	srv.mu.Unlock()
	if draining {
		reply.Err = "server draining"
	} else if seq, err := b.PublishSeq(m.Ev); err != nil {
		// The seq still reports, even alongside an error: a consumed seq
		// may have been journaled before the failure, and a federation
		// router needs it to dedup a recovery replay against its retry.
		reply.Seq = seq
		reply.Err = err.Error()
	} else {
		reply.Seq = seq
		srv.met.publishes.Inc()
		sess.mu.Lock()
		sess.pubWin.Admit(m.PSeq)
		sess.mu.Unlock()
		// Cache the successful ack for retransmission (pseqs share the
		// control request-id space on the client, so the one cache serves
		// both).
		frame := wire.AppendPubAck(nil, reply)
		sess.cacheCtrlReply(m.PSeq, frame)
		sess.sendCtrl(frame)
		return
	}
	sess.sendCtrl(wire.AppendPubAck(nil, reply))
}

// endSession terminates a session: unsubscribes its slots, drops it from
// the server tables, and closes any live connection.
func (srv *Server) endSession(sess *session) {
	conn, slots := sess.kill()
	srv.mu.Lock()
	if _, ok := srv.sessions[sess.token]; ok {
		delete(srv.sessions, sess.token)
		srv.met.sessionsActive.Add(-1)
	}
	for owner, set := range srv.byNode {
		delete(set, sess)
		if len(set) == 0 {
			delete(srv.byNode, owner)
		}
	}
	b := srv.b
	srv.mu.Unlock()
	for _, slot := range slots {
		if b != nil {
			b.Unsubscribe(int(slot))
		}
	}
	if conn != nil {
		conn.Close()
	}
}

// Shutdown gracefully drains the server: stop accepting, refuse new work,
// close the broker (which flushes in-flight deliveries into session
// queues and then checkpoints and closes the journal), wait until every
// session has written and had acknowledged all of its deliveries, then
// say goodbye. If ctx expires first, remaining sessions are killed and
// ctx.Err() is returned; otherwise any broker close error (a failed final
// checkpoint or journal close — durability at risk) is returned so the
// operator's exit status reflects it.
func (srv *Server) Shutdown(ctx context.Context) error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return nil
	}
	srv.draining = true
	ln := srv.ln
	b := srv.b
	var sessions []*session
	for _, s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	drain := wire.AppendDrain(nil)
	for _, s := range sessions {
		s.sendCtrl(drain)
	}

	// Broker close drains its pipeline through Dispatch into the session
	// queues; it can block on a full session, so run it concurrently and
	// be ready to kill sessions if the deadline passes.
	brokerDone := make(chan struct{})
	var brokerErr error
	go func() {
		if b != nil {
			brokerErr = b.Close()
		}
		close(brokerDone)
	}()

	flushed := func() bool {
		for _, s := range sessions {
			if !s.flushed() {
				return false
			}
		}
		return true
	}

	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	brokerClosed := false
	for {
		select {
		case <-brokerDone:
			brokerDone = nil
			brokerClosed = true
		case <-tick.C:
		case <-ctx.Done():
			// Deadline: kill sessions first so a blocked Dispatch unwinds
			// and the broker can finish closing (journal included).
			for _, s := range sessions {
				srv.endSession(s)
			}
			if !brokerClosed {
				<-brokerDone
			}
			srv.finishClose()
			return ctx.Err()
		}
		if brokerClosed && flushed() {
			break
		}
	}

	goodbye := wire.AppendGoodbye(nil)
	for _, s := range sessions {
		s.sendCtrl(goodbye)
	}
	// Give the writers a moment to push the goodbye out before closing.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, s := range sessions {
			s.mu.Lock()
			if len(s.ctrl) > 0 && s.conn != nil && !s.dead {
				done = false
			}
			s.mu.Unlock()
		}
		if done {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, s := range sessions {
		srv.endSession(s)
	}
	srv.finishClose()
	return brokerErr
}

// Close force-stops the server without draining.
func (srv *Server) Close() error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return nil
	}
	srv.draining = true
	ln := srv.ln
	var sessions []*session
	for _, s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, s := range sessions {
		srv.endSession(s)
	}
	srv.finishClose()
	return nil
}

func (srv *Server) finishClose() {
	srv.mu.Lock()
	srv.closed = true
	wheel := srv.wheel
	srv.wheel = nil
	srv.mu.Unlock()
	if wheel != nil {
		wheel.stop()
	}
}
