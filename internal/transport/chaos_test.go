package transport_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// TestChaosExactlyOnceAcrossResets drives the wire through a deterministic
// conn-fault schedule — mid-stream TCP resets, chunked partial writes,
// read/write stalls — plus explicit Bounces, and verifies the end-to-end
// exactly-once contract against a brute-force oracle: every accepted
// publish is delivered to the subscriber exactly once, despite every
// connection in the schedule dying.
func TestChaosExactlyOnceAcrossResets(t *testing.T) {
	addr, _, w, _ := startServer(t, transport.Config{}, 400)

	// Connections 1..4 (the first resume onwards) die after fixed traffic
	// thresholds; connection 0 is bounced by hand. Later conns survive.
	inj, err := faults.NewConnInjector(faults.ConnConfig{
		Seed:           400,
		ChunkBytes:     512,
		WriteStallProb: 0.02,
		ReadStallProb:  0.02,
		MaxStall:       time.Millisecond,
		CutAfterBytes:  []int64{0, 24_000, 18_000, 30_000, 12_000},
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	c, err := transport.Dial(transport.ClientConfig{
		Addr:     addr,
		Credits:  64,
		Registry: reg,
		Dialer: func(a string) (net.Conn, error) {
			raw, err := net.DialTimeout("tcp", a, 5*time.Second)
			if err != nil {
				return nil, err
			}
			return inj.Wrap(raw), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Subscribe(13, allSpace(w)); err != nil {
		t.Fatal(err)
	}

	events := w.Events(400, 401)
	var mu sync.Mutex
	seen := map[int64]int{}
	got := 0
	recvDone := make(chan error, 1)
	go func() {
		for {
			d, ok := c.Recv()
			if !ok {
				recvDone <- c.Err()
				return
			}
			if !d.Interested {
				continue
			}
			mu.Lock()
			seen[d.Seq]++
			dup := seen[d.Seq] > 1
			got++
			n := got
			mu.Unlock()
			if dup {
				t.Errorf("event seq %d delivered twice", d.Seq)
			}
			if n == len(events) {
				recvDone <- nil
				return
			}
		}
	}()

	for i := range events {
		if i == 30 {
			c.Bounce() // manual reset on top of the scheduled cuts
		}
		if err := c.Publish(events[i]); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}

	select {
	case err := <-recvDone:
		if err != nil {
			t.Fatalf("receiver stopped early: %v (got %d/%d)", err, got, len(events))
		}
	case <-time.After(60 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("timeout: received %d/%d deliveries", got, len(events))
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(events) {
		t.Fatalf("distinct events delivered = %d, want %d", len(seen), len(events))
	}
	resumes := reg.Scope("wire_client").Counter("session_resumes").Value()
	if resumes < 2 {
		t.Fatalf("session resumed %d times; the fault schedule should force several", resumes)
	}
	if inj.Wraps() < 3 {
		t.Fatalf("only %d connections were dialed; cuts did not fire", inj.Wraps())
	}
}
