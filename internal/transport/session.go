package transport

import (
	"net"
	"time"

	"sync"

	"repro/internal/topology"
	"repro/internal/wire"
)

// session is one client's server-side state. It outlives individual TCP
// connections: when a connection drops, the session is retained for
// SessionTimeout so the client can resume it, and every delivery the
// client has not acknowledged is re-sent on resume (the client's dedup
// window suppresses the copies that already arrived). All mutable state
// is guarded by mu; cond signals the connection writer.
type session struct {
	srv   *Server
	token uint64

	mu   sync.Mutex
	cond *sync.Cond

	// conn is the live connection (nil while disconnected); connGen
	// increments on every attach/detach so a stale writer or reader
	// observes the generation change and exits.
	conn    net.Conn
	connGen int

	// ctrl holds encoded control frames awaiting the writer. Control
	// frames are never credit-gated: pongs, pubacks and subscribe replies
	// flow even when delivery credits are exhausted.
	ctrl [][]byte

	// queue holds deliveries not yet written (did-ascending); unacked
	// holds deliveries written but not yet acknowledged. On resume the
	// unacked tail above the client's watermark is requeued in front of
	// queue, so the did order on the wire is always ascending.
	queue   []wire.Deliver
	unacked []wire.Deliver

	// credits is the client-granted delivery window; the writer consumes
	// one per delivery and acks/credit frames replenish it.
	credits int64

	// nextDid numbers deliveries per session, starting at 1 — the resume
	// watermark the client reports back in its hello.
	nextDid int64

	// pubWin dedups client publish sequence numbers, making publish
	// retransmission after a reconnect idempotent.
	pubWin *wire.Window

	// ctrlReplies caches encoded replies by control request id, so a
	// subscribe/unsubscribe retransmitted after a reconnect returns the
	// cached reply instead of repeating the side effect. Entries more than
	// ctrlReplyWindow ids behind the newest are pruned.
	ctrlReplies map[int64][]byte
	maxCtrlReq  int64

	// slots maps broker subscription slots owned by this session to the
	// subscribing node, for cleanup and byNode maintenance.
	slots map[int64]topology.NodeID

	// flushDue/flushArmed drive flush-window coalescing via the server's
	// shared flush wheel: the writer arms the wheel on the first delivery
	// of a burst and waits; the wheel's fire sets flushDue and wakes it.
	flushDue   bool
	flushArmed bool

	// dead marks a terminated session: enqueue drops, writers exit.
	dead bool

	// expire fires SessionTimeout after a detach and ends the session;
	// attach stops it.
	expire *time.Timer
}

// ctrlReplyWindow bounds the cached control replies per session.
const ctrlReplyWindow = 128

func newSession(srv *Server, token uint64, credits uint32) *session {
	s := &session{
		srv:         srv,
		token:       token,
		credits:     int64(credits),
		nextDid:     1,
		pubWin:      wire.NewWindow(srv.cfg.PubDedupWindow),
		ctrlReplies: make(map[int64][]byte),
		slots:       make(map[int64]topology.NodeID),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue adds one delivery for this session, assigning its did. It
// blocks while the session's buffer is full and the session is alive —
// the backpressure that chains a slow subscriber through the broker's
// inboxes to health.Admission at the publish edge. Deliveries for dead
// sessions are dropped (the subscriber is gone).
func (s *session) enqueue(d wire.Deliver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stalled := false
	for !s.dead && len(s.queue)+len(s.unacked) >= s.srv.cfg.SessionBuffer {
		if !stalled {
			stalled = true
			s.srv.met.dispatchStalls.Inc()
		}
		s.cond.Wait()
	}
	if s.dead {
		return
	}
	d.Did = s.nextDid
	s.nextDid++
	s.queue = append(s.queue, d)
	s.cond.Broadcast()
}

// sendCtrl queues one encoded control frame and wakes the writer. Control
// frames for dead sessions are dropped.
func (s *session) sendCtrl(frame []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return
	}
	s.ctrl = append(s.ctrl, frame)
	s.cond.Broadcast()
}

// ack applies a cumulative delivery acknowledgement: everything with did
// ≤ upTo leaves unacked, and credit delivery credits return to the pool.
func (s *session) ack(upTo int64, credit uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.unacked) && s.unacked[i].Did <= upTo {
		i++
	}
	if i > 0 {
		s.unacked = append(s.unacked[:0], s.unacked[i:]...)
	}
	if credit > 0 {
		s.credits += int64(credit)
	}
	s.cond.Broadcast()
}

// grantCredit returns bare credits to the pool.
func (s *session) grantCredit(n uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.credits += int64(n)
	s.cond.Broadcast()
}

// cachedCtrlReply returns the cached reply for a retransmitted control
// request id, or nil for a fresh id.
func (s *session) cachedCtrlReply(reqID int64) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrlReplies[reqID]
}

// cacheCtrlReply remembers a control reply for retransmission dedup,
// pruning ids that have fallen ctrlReplyWindow behind.
func (s *session) cacheCtrlReply(reqID int64, frame []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctrlReplies[reqID] = frame
	if reqID > s.maxCtrlReq {
		s.maxCtrlReq = reqID
	}
	for id := range s.ctrlReplies {
		if id < s.maxCtrlReq-ctrlReplyWindow {
			delete(s.ctrlReplies, id)
		}
	}
}

// attach binds a new connection to the session, requeues the unacked
// deliveries the client has not seen (did > lastDid is kept, the rest is
// dropped as acknowledged), resets the credit pool to the client's fresh
// grant, and starts this connection's writer. Any previous connection is
// kicked. Returns the connection generation for the reader to watch.
func (s *session) attach(conn net.Conn, w *wire.Writer, lastDid int64, credits uint32) int {
	s.mu.Lock()
	if s.expire != nil {
		s.expire.Stop()
		s.expire = nil
	}
	old := s.conn
	s.connGen++
	gen := s.connGen
	s.conn = conn

	// Drop acknowledged deliveries; requeue the rest in front, preserving
	// did order. The client's dedup window suppresses any copy that
	// arrived but whose ack was lost.
	keep := s.unacked[:0]
	for _, d := range s.unacked {
		if d.Did > lastDid {
			keep = append(keep, d)
		}
	}
	if len(keep) > 0 {
		requeued := make([]wire.Deliver, 0, len(keep)+len(s.queue))
		requeued = append(requeued, keep...)
		requeued = append(requeued, s.queue...)
		s.queue = requeued
		s.srv.met.redeliveries.Add(int64(len(keep)))
	}
	s.unacked = s.unacked[:0]
	s.credits = int64(credits)
	s.ctrl = nil // stale control replies are retransmission-deduped anyway
	s.cond.Broadcast()
	s.mu.Unlock()

	if old != nil {
		old.Close()
	}
	go s.writeLoop(conn, w, gen)
	return gen
}

// detach drops the session's connection if it is still the given
// generation, and arms the expiry timer. Safe to call from both the
// reader (read error) and the writer (write error); only the first wins.
func (s *session) detach(gen int) {
	s.mu.Lock()
	if s.dead || s.connGen != gen {
		s.mu.Unlock()
		return
	}
	conn := s.conn
	s.conn = nil
	s.connGen++
	if s.expire == nil && s.srv.cfg.SessionTimeout > 0 {
		s.expire = time.AfterFunc(s.srv.cfg.SessionTimeout, func() {
			s.srv.met.expired.Inc()
			s.srv.endSession(s)
		})
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// kill marks the session dead and wakes everyone blocked on it. The
// server removes it from its tables in endSession.
func (s *session) kill() (conn net.Conn, slots []int64) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return nil, nil
	}
	s.dead = true
	conn = s.conn
	s.conn = nil
	s.connGen++
	if s.expire != nil {
		s.expire.Stop()
		s.expire = nil
	}
	for slot := range s.slots {
		slots = append(slots, slot)
	}
	s.queue = nil
	s.unacked = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	return conn, slots
}

// flushed reports whether every delivery and control frame handed to this
// session has been written to its connection. Unacked deliveries don't
// block a drain: TCP ordering means a client that reads the goodbye has
// already read every deliver frame before it.
func (s *session) flushed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) == 0 && len(s.ctrl) == 0
}

// writeLoop is the per-connection writer goroutine: it drains control
// frames unconditionally and deliveries while credits last, coalescing
// deliveries that share a flush window into one batch frame and all
// frames of a wake into one buffered flush. Coalescing deadlines come
// from the server's shared flush wheel, not a per-writer sleep: the loop
// arms the wheel on the first delivery of a burst and waits until the
// window fires, the batch fills, or a control frame needs the wire. It
// exits when the connection is replaced, the session dies, or a write
// fails.
func (s *session) writeLoop(conn net.Conn, w *wire.Writer, gen int) {
	var scratch []byte
	met := s.srv.met
	for {
		s.mu.Lock()
		for s.connGen == gen && !s.dead && len(s.ctrl) == 0 && !s.deliveriesReadyLocked() {
			if len(s.queue) > 0 && s.credits > 0 && !s.flushArmed {
				// First delivery of a burst: give followers one window to
				// coalesce before paying for a flush.
				s.flushArmed = true
				s.srv.wheel.arm(s)
			}
			s.cond.Wait()
		}
		if s.connGen != gen || s.dead {
			s.mu.Unlock()
			return
		}
		ctrl := s.ctrl
		s.ctrl = nil
		var batch []wire.Deliver
		if s.deliveriesReadyLocked() {
			batch = s.takeBatchLocked()
			s.flushDue = false
		}
		if len(batch) == 0 && len(s.queue) > 0 && s.credits <= 0 {
			met.creditStalls.Inc()
		}
		s.mu.Unlock()

		t0 := time.Now()
		frames := 0
		err := error(nil)
		for _, f := range ctrl {
			if err = w.WriteFrame(f); err != nil {
				break
			}
			frames++
		}
		if err == nil && len(batch) > 0 {
			// Split the batch into frames of at most MaxBatch deliveries.
			for off := 0; off < len(batch) && err == nil; off += s.srv.cfg.MaxBatch {
				end := off + s.srv.cfg.MaxBatch
				if end > len(batch) {
					end = len(batch)
				}
				scratch = wire.AppendDeliverBatch(scratch[:0], batch[off:end])
				err = w.WriteFrame(scratch)
				frames++
				met.batchSize.Observe(float64(end - off))
			}
			met.deliveries.Add(int64(len(batch)))
		}
		if err == nil {
			met.flushBytes.Observe(float64(w.Buffered()))
			met.flushFrames.Observe(float64(frames))
			err = w.Flush()
		}
		met.writeNs.ObserveDuration(time.Since(t0))
		met.framesOut.Add(int64(frames))
		if err != nil {
			s.detach(gen)
			return
		}
	}
}

// deliveriesReadyLocked reports whether queued deliveries should go to
// the wire now: credits available and either no flush window, the window
// already fired (flushDue), or a full batch is waiting. Caller holds mu.
func (s *session) deliveriesReadyLocked() bool {
	if len(s.queue) == 0 || s.credits <= 0 {
		return false
	}
	return s.srv.cfg.FlushWindow <= 0 || s.flushDue || len(s.queue) >= s.srv.cfg.MaxBatch
}

// flushFire is the wheel's callback: the session's flush window elapsed.
func (s *session) flushFire() {
	s.mu.Lock()
	s.flushDue = true
	s.flushArmed = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// takeBatchLocked moves up to credits deliveries from queue to unacked
// and returns them. Caller holds mu.
func (s *session) takeBatchLocked() []wire.Deliver {
	n := len(s.queue)
	if int64(n) > s.credits {
		n = int(s.credits)
	}
	if n <= 0 {
		return nil
	}
	batch := make([]wire.Deliver, n)
	copy(batch, s.queue[:n])
	s.queue = append(s.queue[:0], s.queue[n:]...)
	s.credits -= int64(n)
	s.unacked = append(s.unacked, batch...)
	return batch
}
