package transport_test

import (
	"context"
	"errors"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/space"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

// testWorld builds a small engine + world for transport tests.
func testWorld(t testing.TB, seed int64) (*core.Engine, *workload.World) {
	t.Helper()
	topo := topology.Eval600
	topo.Seed = seed
	g, err := topology.Generate(topo)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: 200, PubModes: 1, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewFromWorld(w, w.Events(600, seed+2), core.Config{Groups: 15, CellBudget: 400})
	if err != nil {
		t.Fatal(err)
	}
	return e, w
}

// allSpace returns a rectangle covering the whole event space.
func allSpace(w *workload.World) space.Rect {
	dims := len(w.Axes)
	r := make(space.Rect, dims)
	for i := range r {
		r[i] = space.Interval{Lo: -1e18, Hi: 1e18}
	}
	return r
}

// startServer wires an engine to a listening transport server and returns
// the dial address plus a shutdown-capable handle.
func startServer(t testing.TB, cfg transport.Config, seed int64) (addr string, srv *transport.Server, w *workload.World, serveErr chan error) {
	t.Helper()
	e, w := testWorld(t, seed)
	srv = transport.NewServer(cfg)
	b, err := broker.New(e, broker.WithWorkers(2), broker.WithObserver(srv.Dispatch))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr = make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln, b) }()
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv, w, serveErr
}

// TestLoopbackExactlyOnce: a wire client subscribes to the whole space,
// publishes through the wire, and must receive every event exactly once.
func TestLoopbackExactlyOnce(t *testing.T) {
	addr, _, w, _ := startServer(t, transport.Config{}, 300)
	c, err := transport.Dial(transport.ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const owner = topology.NodeID(7)
	slot, err := c.Subscribe(owner, allSpace(w))
	if err != nil {
		t.Fatal(err)
	}
	if slot < 0 {
		t.Fatalf("slot = %d", slot)
	}

	events := w.Events(300, 301)
	var pubWG sync.WaitGroup
	pubErr := make(chan error, len(events))
	for i := range events {
		pubWG.Add(1)
		go func(ev workload.Event) {
			defer pubWG.Done()
			if err := c.Publish(ev); err != nil {
				pubErr <- err
			}
		}(events[i])
	}
	pubWG.Wait()
	close(pubErr)
	for err := range pubErr {
		t.Fatalf("publish: %v", err)
	}

	// Every event matches the full-space rect, so node 7 must get each
	// exactly once (interested deliveries, deduped per node by seq).
	seen := map[int64]int{}
	got := 0
	deadline := time.After(30 * time.Second)
	for got < len(events) {
		var d wire.Deliver
		var ok bool
		done := make(chan struct{})
		go func() { d, ok = c.Recv(); close(done) }()
		select {
		case <-done:
		case <-deadline:
			t.Fatalf("timeout: received %d/%d interested deliveries", got, len(events))
		}
		if !ok {
			t.Fatalf("connection closed after %d/%d deliveries: %v", got, len(events), c.Err())
		}
		if !d.Interested {
			continue
		}
		seen[d.Seq]++
		if seen[d.Seq] > 1 {
			t.Fatalf("event seq %d delivered %d times", d.Seq, seen[d.Seq])
		}
		got++
	}
	if len(seen) != len(events) {
		t.Fatalf("distinct events = %d, want %d", len(seen), len(events))
	}
	if err := c.Unsubscribe(slot); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}
}

// TestResumeAcrossBounce: force a reconnect mid-stream and verify no
// delivery is lost or duplicated — the session resumes and unacked
// deliveries are retransmitted under the client's dedup watermark.
func TestResumeAcrossBounce(t *testing.T) {
	addr, _, w, _ := startServer(t, transport.Config{}, 310)
	reg := telemetry.NewRegistry()
	c, err := transport.Dial(transport.ClientConfig{Addr: addr, Registry: reg, Credits: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Subscribe(8, allSpace(w)); err != nil {
		t.Fatal(err)
	}

	events := w.Events(200, 311)
	seen := map[int64]bool{}
	got := 0
	var recvWG sync.WaitGroup
	recvWG.Add(1)
	var recvErr error
	go func() {
		defer recvWG.Done()
		for got < len(events) {
			d, ok := c.Recv()
			if !ok {
				recvErr = c.Err()
				return
			}
			if !d.Interested {
				continue
			}
			if seen[d.Seq] {
				recvErr = errors.New("duplicate delivery")
				return
			}
			seen[d.Seq] = true
			got++
		}
	}()

	for i := range events {
		if i == 50 || i == 120 {
			c.Bounce() // kill the TCP conn mid-flight; session must resume
		}
		if err := c.Publish(events[i]); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	recvWG.Wait()
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	if got != len(events) {
		t.Fatalf("received %d/%d", got, len(events))
	}
	if n := reg.Scope("wire_client").Counter("session_resumes").Value(); n < 1 {
		t.Fatalf("no session resume recorded (bounces did not exercise reconnect)")
	}
}

// TestCreditExhaustionBlocksDeliverNotControl: with a tiny credit window
// and a consumer that doesn't read, the server must stall deliveries —
// but control traffic (ping/pong) keeps flowing. Consuming releases the
// rest.
func TestCreditExhaustionBlocksDeliverNotControl(t *testing.T) {
	reg := telemetry.NewRegistry()
	addr, _, w, _ := startServer(t, transport.Config{Registry: reg, SessionBuffer: 4096}, 320)
	const credits = 4
	c, err := transport.Dial(transport.ClientConfig{Addr: addr, Credits: credits})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Subscribe(9, allSpace(w)); err != nil {
		t.Fatal(err)
	}

	events := w.Events(100, 321)
	for i := range events {
		if err := c.Publish(events[i]); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}

	// The server may send at most `credits` deliveries while we don't
	// consume. Wait for the stall to establish itself.
	wireScope := reg.Scope("wire")
	deliveredBefore := int64(0)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		deliveredBefore = wireScope.Counter("deliveries_sent").Value()
		if deliveredBefore >= credits {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if deliveredBefore > credits {
		t.Fatalf("server sent %d deliveries with only %d credits", deliveredBefore, credits)
	}
	time.Sleep(50 * time.Millisecond)
	if n := wireScope.Counter("deliveries_sent").Value(); n > credits {
		t.Fatalf("server overran the credit window: %d > %d", n, credits)
	}

	// Control traffic is not gated: ping round-trips while deliveries
	// stall.
	for i := 0; i < 3; i++ {
		if err := c.Ping(5 * time.Second); err != nil {
			t.Fatalf("ping during credit stall: %v", err)
		}
	}

	// Consuming returns credits and unblocks the rest.
	got := 0
	for got < 100 {
		d, ok := c.Recv()
		if !ok {
			t.Fatalf("closed after %d deliveries: %v", got, c.Err())
		}
		_ = d
		got++
		if got == 100 {
			break
		}
	}
	if n := wireScope.Counter("credit_stalls").Value(); n < 1 {
		t.Fatalf("no credit stall recorded")
	}
}

// TestGracefulDrain: Shutdown must flush every queued delivery to the
// client before the goodbye, and Serve must return ErrServerClosed.
func TestGracefulDrain(t *testing.T) {
	addr, srv, w, serveErr := startServer(t, transport.Config{}, 330)
	c, err := transport.Dial(transport.ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Subscribe(11, allSpace(w)); err != nil {
		t.Fatal(err)
	}

	events := w.Events(150, 331)
	for i := range events {
		if err := c.Publish(events[i]); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}

	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutErr <- srv.Shutdown(ctx)
	}()

	// Keep consuming: every interested delivery for the accepted
	// publishes must arrive before the connection reports closed.
	got := 0
	for {
		d, ok := c.Recv()
		if !ok {
			break
		}
		if d.Interested {
			got++
		}
	}
	if got != len(events) {
		t.Fatalf("drain delivered %d/%d events before goodbye", got, len(events))
	}
	if err := c.Err(); err != nil {
		t.Fatalf("client terminal error after clean drain: %v", err)
	}
	if err := <-shutErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, transport.ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

// TestVersionMismatchRejected: a hello with the wrong protocol version is
// answered with a CodeVersion error frame and the connection closed.
func TestVersionMismatchRejected(t *testing.T) {
	addr, _, _, _ := startServer(t, transport.Config{}, 340)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	wr := wire.NewWriter(raw, wire.DefaultMaxFrame)
	hello := wire.AppendHello(nil, wire.Hello{Version: wire.Version + 7, Credits: 1})
	if err := wr.WriteFrame(hello); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	rd := wire.NewReader(raw, wire.DefaultMaxFrame)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := rd.ReadFrame()
	if err != nil {
		t.Fatalf("reading version-reject reply: %v", err)
	}
	em, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatalf("reply was not an error frame: %v", err)
	}
	if em.Code != wire.CodeVersion {
		t.Fatalf("error code = %d, want CodeVersion", em.Code)
	}
	// The server closes the connection after the rejection.
	if _, err := rd.ReadFrame(); err == nil {
		t.Fatal("connection stayed open after version reject")
	}
}

// TestOversizedFrameDropsConn: a frame above the server's limit closes
// the connection (and counts as a bad frame) without killing the server.
func TestOversizedFrameDropsConn(t *testing.T) {
	reg := telemetry.NewRegistry()
	addr, _, _, _ := startServer(t, transport.Config{Registry: reg, MaxFrame: 1 << 12}, 350)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Length prefix far beyond MaxFrame, bogus checksum: the server must
	// reject from the prefix alone and drop the conn.
	hdr := []byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}
	if _, err := raw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := raw.Read(buf); err != nil {
			break // conn dropped, as required
		}
	}
	if n := reg.Scope("wire").Counter("bad_frames").Value(); n < 1 {
		t.Fatalf("bad_frames = %d, want ≥ 1", n)
	}

	// The listener is still alive: a well-formed client connects fine.
	c, err := transport.Dial(transport.ClientConfig{Addr: addr})
	if err != nil {
		t.Fatalf("server died after oversized frame: %v", err)
	}
	c.Close()
}

// TestGoroutineSlopePerConnection pins the per-connection goroutine
// budget: flush coalescing runs on the server's single shared wheel, so
// adding a connection must cost a small constant number of goroutines
// (reader + writer each side), never a per-session sleeper or timer
// goroutine. Measured as the slope between a small and a large fleet so
// fixed overhead (broker workers, wheel, listener) cancels out.
func TestGoroutineSlopePerConnection(t *testing.T) {
	addr, _, w, _ := startServer(t, transport.Config{}, 420)

	var conns []*transport.Conn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	connect := func(k int) {
		for i := 0; i < k; i++ {
			c, err := transport.Dial(transport.ClientConfig{Addr: addr})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Subscribe(topology.NodeID(len(conns)), allSpace(w)); err != nil {
				t.Fatal(err)
			}
			conns = append(conns, c)
		}
	}
	measure := func() int {
		// A burst exercises every writer's flush path before measuring.
		for _, ev := range w.Events(5, 421+int64(len(conns))) {
			if err := conns[0].Publish(ev); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(200 * time.Millisecond)
		best := 1 << 30
		for i := 0; i < 20; i++ {
			if n := runtime.NumGoroutine(); n < best {
				best = n
			}
			time.Sleep(5 * time.Millisecond)
		}
		return best
	}

	connect(4)
	small := measure()
	connect(32)
	large := measure()
	slope := float64(large-small) / 32
	t.Logf("goroutines: %d @ 4 conns, %d @ 36 conns, slope %.2f/conn", small, large, slope)
	// Reader + writer on each side is 4; headroom for the client's
	// bookkeeping goroutines. A per-session flush sleeper or timer
	// goroutine would push this past 6.
	if slope > 6 {
		t.Errorf("per-connection goroutine slope %.2f, want ≤ 6", slope)
	}
}

// TestShutdownPropagatesJournalCloseError pins the daemon's exit-code
// contract: a drain whose final checkpoint or journal close fails must
// surface the failure from Shutdown — pubsub-server turns it into a
// non-zero exit — instead of reporting a clean drain while durable state
// is at risk.
func TestShutdownPropagatesJournalCloseError(t *testing.T) {
	dir := t.TempDir()
	e, w := testWorld(t, 340)
	srv := transport.NewServer(transport.Config{})
	b, err := broker.Open(dir, e, broker.WithWorkers(2), broker.WithObserver(srv.Dispatch))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln, b) }()
	// A connected client both proves Serve is up (Shutdown must see the
	// broker Serve registered) and gives the drain a session to flush.
	c, err := transport.Dial(transport.ClientConfig{Addr: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, ev := range w.Events(5, 341) {
		if err := b.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}

	// Rip the journal directory out from under the broker: the final
	// checkpoint on close has nowhere to land.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown reported a clean drain after losing the journal directory")
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, transport.ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}
