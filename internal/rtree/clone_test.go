package rtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/space"
)

func sortedHits(t *Tree, p space.Point) []int {
	hits := t.SearchPoint(p)
	sort.Ints(hits)
	return hits
}

// TestCloneIsolation: a clone must answer queries identically at clone
// time and stay frozen while the original keeps mutating — including
// through node splits, which reshuffle entries across the shared-nothing
// node copies.
func TestCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	const dim = 3
	tr := New(dim)
	rects := make([]space.Rect, 0, 400)
	for i := 0; i < 200; i++ {
		r := randRect(rng, dim)
		rects = append(rects, r)
		if err := tr.Insert(r, i); err != nil {
			t.Fatal(err)
		}
	}

	cl := tr.Clone()
	if cl.Len() != tr.Len() {
		t.Fatalf("clone Len = %d, want %d", cl.Len(), tr.Len())
	}

	// Record the clone's answers on a probe set.
	probes := make([]space.Point, 100)
	for i := range probes {
		p := make(space.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * 24
		}
		probes[i] = p
	}
	before := make([][]int, len(probes))
	for i, p := range probes {
		before[i] = sortedHits(cl, p)
		if want := sortedHits(tr, p); !reflect.DeepEqual(before[i], want) {
			t.Fatalf("clone diverged from original at clone time: %v vs %v", before[i], want)
		}
	}

	// Mutate the original hard: force splits with 200 more inserts, delete
	// half the originals.
	for i := 200; i < 400; i++ {
		r := randRect(rng, dim)
		rects = append(rects, r)
		if err := tr.Insert(r, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i += 2 {
		if !tr.Delete(rects[i], i) {
			t.Fatalf("delete %d failed", i)
		}
	}

	for i, p := range probes {
		if got := sortedHits(cl, p); !reflect.DeepEqual(got, before[i]) {
			t.Fatalf("clone drifted after original mutated: probe %d %v vs %v", i, got, before[i])
		}
	}

	// And the other direction: mutating the clone leaves the original alone.
	live := map[int]bool{}
	for i := 1; i < 400; i += 2 {
		live[i] = true
	}
	for i := 200; i < 400; i += 2 {
		live[i] = true
	}
	snapshot := make([][]int, len(probes))
	for i, p := range probes {
		snapshot[i] = sortedHits(tr, p)
	}
	for i := 1; i < 100; i += 2 {
		if !cl.Delete(rects[i], i) {
			t.Fatalf("clone delete %d failed", i)
		}
	}
	for i, p := range probes {
		if got := sortedHits(tr, p); !reflect.DeepEqual(got, snapshot[i]) {
			t.Fatalf("original drifted after clone mutated: probe %d", i)
		}
	}
}

// TestCloneEmpty: cloning an empty tree works and the clone is usable.
func TestCloneEmpty(t *testing.T) {
	tr := New(2)
	cl := tr.Clone()
	if cl.Len() != 0 {
		t.Fatalf("empty clone Len = %d", cl.Len())
	}
	if err := cl.Insert(space.Rect{space.Span(0, 1), space.Span(0, 1)}, 7); err != nil {
		t.Fatal(err)
	}
	if hits := tr.SearchPoint(space.Point{0.5, 0.5}); len(hits) != 0 {
		t.Fatal("insert on clone leaked into original")
	}
	if hits := cl.SearchPoint(space.Point{0.5, 0.5}); len(hits) != 1 || hits[0] != 7 {
		t.Fatalf("clone insert lost: %v", hits)
	}
}
