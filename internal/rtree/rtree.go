// Package rtree implements an R*-tree (Beckmann, Kriegel, Schneider,
// Seeger, SIGMOD 1990 — the paper's ref [5]) over axis-aligned half-open
// rectangles. The pub-sub matching problem reduces to point-stabbing
// queries: given an event ω, find all subscription rectangles containing
// it. The tree supports insertion with forced reinsertion, the R* split
// heuristic, deletion with tree condensation, and point/rect queries.
//
// Rectangles may have infinite sides (wildcard predicates); they are
// clamped to ±maxCoord internally, which preserves all containment
// relations for queries with coordinates inside (-maxCoord, maxCoord].
package rtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/space"
)

const (
	maxEntries    = 16                     // M
	minEntries    = 6                      // m ≈ 40% of M
	reinsertCount = 5                      // p ≈ 30% of M, entries re-inserted on first overflow
	maxCoord      = math.MaxFloat64 / 1e16 // clamp for infinite rectangle sides
)

type entry struct {
	rect  space.Rect // clamped MBR
	child *node      // nil at leaves
	data  int        // user id, valid at leaves
}

type node struct {
	leaf    bool
	level   int // 0 at leaves
	entries []entry
	parent  *node // nil at the root
}

// Tree is an R*-tree mapping rectangles to integer ids. The zero value is
// not usable; call New.
type Tree struct {
	dim  int
	root *node
	size int
}

// New creates an empty tree over dim-dimensional rectangles.
func New(dim int) *Tree {
	if dim <= 0 {
		panic(fmt.Sprintf("rtree: dimension %d", dim))
	}
	return &Tree{dim: dim, root: &node{leaf: true}}
}

// Len returns the number of stored rectangles.
func (t *Tree) Len() int { return t.size }

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// clampRect copies r with infinite sides clamped to ±maxCoord.
func clampRect(r space.Rect) space.Rect {
	out := make(space.Rect, len(r))
	for i, iv := range r {
		lo, hi := iv.Lo, iv.Hi
		if lo < -maxCoord {
			lo = -maxCoord
		}
		if hi > maxCoord {
			hi = maxCoord
		}
		out[i] = space.Interval{Lo: lo, Hi: hi}
	}
	return out
}

// Insert adds a rectangle with the given id. Empty rectangles are rejected.
func (t *Tree) Insert(r space.Rect, id int) error {
	if r.Dim() != t.dim {
		return fmt.Errorf("rtree: rect dim %d, tree dim %d", r.Dim(), t.dim)
	}
	if r.Empty() {
		return fmt.Errorf("rtree: empty rectangle %v", r)
	}
	reinserted := make(map[int]bool)
	t.insert(entry{rect: clampRect(r), data: id}, 0, reinserted)
	t.size++
	return nil
}

// insert places e at the given level (0 = leaf).
func (t *Tree) insert(e entry, level int, reinserted map[int]bool) {
	n := t.chooseSubtree(e.rect, level)
	if e.child != nil {
		e.child.parent = n
	}
	n.entries = append(n.entries, e)
	if len(n.entries) > maxEntries {
		t.overflow(n, reinserted)
	} else {
		t.adjustUp(n)
	}
}

// adjustUp recomputes MBRs from n to the root via parent pointers.
func (t *Tree) adjustUp(n *node) {
	for child := n; child.parent != nil; child = child.parent {
		p := child.parent
		for j := range p.entries {
			if p.entries[j].child == child {
				p.entries[j].rect = mbrOf(child.entries)
				break
			}
		}
	}
}

// chooseSubtree descends from the root to the node at the target level that
// should receive a rectangle, using the R* criteria.
func (t *Tree) chooseSubtree(r space.Rect, level int) *node {
	n := t.root
	for n.level > level {
		childrenAreLeaves := n.level == 1
		best := -1
		var bestOverlap, bestEnl, bestArea float64
		for i := range n.entries {
			enl := enlargement(n.entries[i].rect, r)
			area := areaOf(n.entries[i].rect)
			var overlap float64
			if childrenAreLeaves {
				overlap = overlapEnlargement(n.entries, i, r)
			}
			better := false
			switch {
			case best == -1:
				better = true
			case childrenAreLeaves && overlap != bestOverlap:
				better = overlap < bestOverlap
			case enl != bestEnl:
				better = enl < bestEnl
			default:
				better = area < bestArea
			}
			if better {
				best, bestOverlap, bestEnl, bestArea = i, overlap, enl, area
			}
		}
		n = n.entries[best].child
	}
	return n
}

// overflow handles a node with M+1 entries: forced reinsertion on the first
// overflow at each level per insertion, split otherwise.
func (t *Tree) overflow(n *node, reinserted map[int]bool) {
	if n != t.root && !reinserted[n.level] {
		reinserted[n.level] = true
		t.reinsert(n, reinserted)
		return
	}
	t.split(n, reinserted)
}

// reinsert removes the p entries whose centers lie farthest from the node
// MBR center and re-inserts them (close reinsert: nearest first).
func (t *Tree) reinsert(n *node, reinserted map[int]bool) {
	center := rectCenter(mbrOf(n.entries))
	type distEntry struct {
		e entry
		d float64
	}
	des := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		c := rectCenter(e.rect)
		d := 0.0
		for k := range c {
			dd := c[k] - center[k]
			d += dd * dd
		}
		des[i] = distEntry{e: e, d: d}
	}
	sort.SliceStable(des, func(i, j int) bool { return des[i].d < des[j].d })
	keep := len(des) - reinsertCount
	n.entries = n.entries[:0]
	for i := 0; i < keep; i++ {
		n.entries = append(n.entries, des[i].e)
	}
	t.adjustUp(n)
	level := n.level
	for i := keep; i < len(des); i++ {
		t.insert(des[i].e, level, reinserted)
	}
}

// split performs the R* topological split of an overfull node.
func (t *Tree) split(n *node, reinserted map[int]bool) {
	groupA, groupB := chooseSplit(n.entries, t.dim)

	if n == t.root {
		left := &node{leaf: n.leaf, level: n.level, entries: groupA}
		right := &node{leaf: n.leaf, level: n.level, entries: groupB}
		adoptChildren(left)
		adoptChildren(right)
		t.root = &node{
			leaf:  false,
			level: n.level + 1,
			entries: []entry{
				{rect: mbrOf(left.entries), child: left},
				{rect: mbrOf(right.entries), child: right},
			},
		}
		left.parent = t.root
		right.parent = t.root
		return
	}

	parent := n.parent
	sibling := &node{leaf: n.leaf, level: n.level, entries: groupB, parent: parent}
	n.entries = groupA
	adoptChildren(n)
	adoptChildren(sibling)
	for j := range parent.entries {
		if parent.entries[j].child == n {
			parent.entries[j].rect = mbrOf(n.entries)
		}
	}
	parent.entries = append(parent.entries, entry{rect: mbrOf(sibling.entries), child: sibling})
	if len(parent.entries) > maxEntries {
		t.overflow(parent, reinserted)
	} else {
		t.adjustUp(parent)
	}
}

// adoptChildren points n's children back at n after a split moved them.
func adoptChildren(n *node) {
	if n.leaf {
		return
	}
	for i := range n.entries {
		n.entries[i].child.parent = n
	}
}

// chooseSplit implements the R* split: pick the axis minimising the margin
// sum over all valid distributions, then the distribution with minimal
// overlap (ties by area).
func chooseSplit(entries []entry, dim int) (a, b []entry) {
	type dist struct {
		left, right []entry
		overlap     float64
		area        float64
	}
	bestAxis := -1
	var bestMargin float64
	var bestDists []dist

	for axis := 0; axis < dim; axis++ {
		for _, byHi := range []bool{false, true} {
			es := make([]entry, len(entries))
			copy(es, entries)
			ax := axis
			hi := byHi
			sort.SliceStable(es, func(i, j int) bool {
				if hi {
					return es[i].rect[ax].Hi < es[j].rect[ax].Hi
				}
				return es[i].rect[ax].Lo < es[j].rect[ax].Lo
			})
			margin := 0.0
			var dists []dist
			for k := minEntries; k <= len(es)-minEntries; k++ {
				left := append([]entry(nil), es[:k]...)
				right := append([]entry(nil), es[k:]...)
				lm, rm := mbrOf(left), mbrOf(right)
				margin += marginOf(lm) + marginOf(rm)
				dists = append(dists, dist{
					left: left, right: right,
					overlap: intersectArea(lm, rm),
					area:    areaOf(lm) + areaOf(rm),
				})
			}
			if bestAxis == -1 || margin < bestMargin {
				bestAxis, bestMargin, bestDists = axis, margin, dists
			}
		}
	}

	best := 0
	for i := 1; i < len(bestDists); i++ {
		d, bd := bestDists[i], bestDists[best]
		if d.overlap < bd.overlap || (d.overlap == bd.overlap && d.area < bd.area) {
			best = i
		}
	}
	return bestDists[best].left, bestDists[best].right
}

// SearchPoint returns the ids of all rectangles containing p, in
// unspecified order.
func (t *Tree) SearchPoint(p space.Point) []int {
	return t.SearchPointAppend(p, nil)
}

// SearchPointAppend appends the ids of all rectangles containing p to out
// and returns the extended slice, in unspecified order. Passing a reusable
// buffer (sliced to length 0) makes the query allocation-free once the
// buffer has grown to the hit count.
func (t *Tree) SearchPointAppend(p space.Point, out []int) []int {
	if len(p) != t.dim {
		panic(fmt.Sprintf("rtree: point dim %d, tree dim %d", len(p), t.dim))
	}
	t.searchPoint(t.root, p, &out)
	return out
}

func (t *Tree) searchPoint(n *node, p space.Point, out *[]int) {
	for i := range n.entries {
		if !n.entries[i].rect.Contains(p) {
			continue
		}
		if n.leaf {
			*out = append(*out, n.entries[i].data)
		} else {
			t.searchPoint(n.entries[i].child, p, out)
		}
	}
}

// SearchRect returns the ids of all rectangles intersecting q.
func (t *Tree) SearchRect(q space.Rect) []int {
	if q.Dim() != t.dim {
		panic(fmt.Sprintf("rtree: rect dim %d, tree dim %d", q.Dim(), t.dim))
	}
	cq := clampRect(q)
	var out []int
	t.searchRect(t.root, cq, &out)
	return out
}

func (t *Tree) searchRect(n *node, q space.Rect, out *[]int) {
	for i := range n.entries {
		if !n.entries[i].rect.Intersects(q) {
			continue
		}
		if n.leaf {
			*out = append(*out, n.entries[i].data)
		} else {
			t.searchRect(n.entries[i].child, q, out)
		}
	}
}

// Delete removes one rectangle previously inserted with Insert(r, id),
// matching both the rectangle and the id. It reports whether an entry was
// removed.
func (t *Tree) Delete(r space.Rect, id int) bool {
	if r.Dim() != t.dim {
		return false
	}
	cr := clampRect(r)
	leaf, idx := t.findLeaf(t.root, cr, id)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf)
	// Shrink the root while it is a non-leaf with a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.root.parent = nil
	}
	if len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}
	return true
}

func (t *Tree) findLeaf(n *node, r space.Rect, id int) (*node, int) {
	for i := range n.entries {
		e := n.entries[i]
		if n.leaf {
			if e.data == id && e.rect.Equal(r) {
				return n, i
			}
		} else if e.rect.Intersects(r) {
			if leaf, idx := t.findLeaf(e.child, r, id); leaf != nil {
				return leaf, idx
			}
		}
	}
	return nil, -1
}

// condense walks from the shrunken leaf to the root, removing underfull
// nodes and collecting their entries for re-insertion at the right level.
func (t *Tree) condense(leaf *node) {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan
	for n := leaf; n.parent != nil; {
		parent := n.parent
		if len(n.entries) < minEntries {
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e: e, level: n.level})
			}
		} else {
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries[j].rect = mbrOf(n.entries)
					break
				}
			}
		}
		n = parent
	}
	for _, o := range orphans {
		reinserted := make(map[int]bool)
		t.insert(o.e, o.level, reinserted)
	}
}

// --- geometry helpers (all on clamped, finite rects) ---

func mbrOf(es []entry) space.Rect {
	if len(es) == 0 {
		return nil
	}
	out := es[0].rect.Clone()
	for _, e := range es[1:] {
		for d := range out {
			if e.rect[d].Lo < out[d].Lo {
				out[d].Lo = e.rect[d].Lo
			}
			if e.rect[d].Hi > out[d].Hi {
				out[d].Hi = e.rect[d].Hi
			}
		}
	}
	return out
}

func areaOf(r space.Rect) float64 {
	a := 1.0
	for _, iv := range r {
		a *= iv.Hi - iv.Lo
	}
	return a
}

func marginOf(r space.Rect) float64 {
	m := 0.0
	for _, iv := range r {
		m += iv.Hi - iv.Lo
	}
	return m
}

func intersectArea(a, b space.Rect) float64 {
	v := 1.0
	for d := range a {
		lo := math.Max(a[d].Lo, b[d].Lo)
		hi := math.Min(a[d].Hi, b[d].Hi)
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// enlargement is the area growth of r needed to cover q.
func enlargement(r, q space.Rect) float64 {
	grown := 1.0
	for d := range r {
		lo := math.Min(r[d].Lo, q[d].Lo)
		hi := math.Max(r[d].Hi, q[d].Hi)
		grown *= hi - lo
	}
	return grown - areaOf(r)
}

// overlapEnlargement is the growth in overlap between entry i and its
// siblings if entry i absorbs q.
func overlapEnlargement(es []entry, i int, q space.Rect) float64 {
	grown := es[i].rect.Clone()
	for d := range grown {
		if q[d].Lo < grown[d].Lo {
			grown[d].Lo = q[d].Lo
		}
		if q[d].Hi > grown[d].Hi {
			grown[d].Hi = q[d].Hi
		}
	}
	before, after := 0.0, 0.0
	for j := range es {
		if j == i {
			continue
		}
		before += intersectArea(es[i].rect, es[j].rect)
		after += intersectArea(grown, es[j].rect)
	}
	return after - before
}

func rectCenter(r space.Rect) []float64 {
	c := make([]float64, len(r))
	for d, iv := range r {
		c[d] = (iv.Lo + iv.Hi) / 2
	}
	return c
}

// depth returns the height of the tree (for tests/diagnostics).
func (t *Tree) depth() int {
	d := 1
	n := t.root
	for !n.leaf {
		n = n.entries[0].child
		d++
	}
	return d
}

// checkInvariants validates structural invariants; used by tests.
func (t *Tree) checkInvariants() error {
	var walk func(n *node, isRoot bool) (int, error)
	walk = func(n *node, isRoot bool) (int, error) {
		if !isRoot && (len(n.entries) < minEntries || len(n.entries) > maxEntries) {
			return 0, fmt.Errorf("rtree: node with %d entries", len(n.entries))
		}
		if len(n.entries) > maxEntries {
			return 0, fmt.Errorf("rtree: overfull node with %d entries", len(n.entries))
		}
		if n.leaf {
			if n.level != 0 {
				return 0, fmt.Errorf("rtree: leaf at level %d", n.level)
			}
			return len(n.entries), nil
		}
		count := 0
		for i := range n.entries {
			child := n.entries[i].child
			if child == nil {
				return 0, fmt.Errorf("rtree: nil child in internal node")
			}
			if child.parent != n {
				return 0, fmt.Errorf("rtree: broken parent pointer at level %d", n.level)
			}
			if child.level != n.level-1 {
				return 0, fmt.Errorf("rtree: child level %d under level %d", child.level, n.level)
			}
			if !n.entries[i].rect.Equal(mbrOf(child.entries)) {
				return 0, fmt.Errorf("rtree: stale MBR at level %d", n.level)
			}
			c, err := walk(child, false)
			if err != nil {
				return 0, err
			}
			count += c
		}
		return count, nil
	}
	count, err := walk(t.root, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but %d entries reachable", t.size, count)
	}
	return nil
}
