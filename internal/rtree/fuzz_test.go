package rtree

import (
	"math"
	"testing"

	"repro/internal/space"
)

// FuzzTreeOps derives a deterministic op sequence from the fuzz input and
// checks the tree against a linear-scan oracle plus structural invariants.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 255, 0, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			t.Skip()
		}
		tr := New(2)
		var oracle bruteIndex
		type item struct {
			rect space.Rect
			id   int
		}
		var live []item
		next := 0
		// Consume 5 bytes per op: opcode + 4 coordinate bytes.
		for i := 0; i+5 <= len(data); i += 5 {
			op := data[i]
			c := func(j int) float64 { return float64(data[i+1+j]) / 8 }
			switch {
			case op%3 != 0 || len(live) == 0: // insert
				rect := space.Rect{
					space.Span(c(0), c(0)+c(1)+0.125),
					space.Span(c(2), c(2)+c(3)+0.125),
				}
				if err := tr.Insert(rect, next); err != nil {
					t.Fatalf("insert: %v", err)
				}
				oracle.insert(rect, next)
				live = append(live, item{rect, next})
				next++
			default: // delete
				k := int(data[i+1]) % len(live)
				it := live[k]
				if !tr.Delete(it.rect, it.id) {
					t.Fatal("delete of live item failed")
				}
				oracle.remove(it.rect, it.id)
				live = append(live[:k], live[k+1:]...)
			}
		}
		if tr.Len() != len(live) {
			t.Fatalf("Len %d, want %d", tr.Len(), len(live))
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatal(err)
		}
		// Probe a grid of points against the oracle.
		for x := 0.0; x <= 32; x += 7.5 {
			for y := 0.0; y <= 32; y += 7.5 {
				p := space.Point{x, y}
				got := tr.SearchPoint(p)
				want := oracle.searchPoint(p)
				if len(got) != len(want) {
					t.Fatalf("point %v: %d vs %d hits", p, len(got), len(want))
				}
			}
		}
	})
}

// FuzzClampRect checks that clamping preserves containment for finite
// query points.
func FuzzClampRect(f *testing.F) {
	f.Add(0.0, 1.0, 0.5)
	f.Add(math.Inf(-1), 5.0, -100.0)
	f.Add(2.0, math.Inf(1), 1e17)
	f.Fuzz(func(t *testing.T, lo, hi, x float64) {
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsNaN(x) {
			t.Skip()
		}
		if math.Abs(x) >= maxCoord {
			t.Skip()
		}
		r := space.Rect{{Lo: lo, Hi: hi}}
		c := clampRect(r)
		if r.Contains(space.Point{x}) != c.Contains(space.Point{x}) {
			t.Fatalf("clamp changed containment of %v in %v → %v", x, r, c)
		}
	})
}
