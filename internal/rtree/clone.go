package rtree

// Clone returns an independent copy of the tree: every node is copied, so
// Insert/Delete on either tree never touches the other. Rectangles are
// shared — the tree never mutates a stored rect in place (MBR adjustments
// always install freshly built rects), so sharing them is safe and keeps a
// clone at O(nodes) extra memory. The snapshot decision plane clones the
// subscription index this way on every churn-dirty snapshot build.
func (t *Tree) Clone() *Tree {
	return &Tree{dim: t.dim, size: t.size, root: cloneNode(t.root, nil)}
}

func cloneNode(n *node, parent *node) *node {
	c := &node{
		leaf:    n.leaf,
		level:   n.level,
		parent:  parent,
		entries: make([]entry, len(n.entries)),
	}
	copy(c.entries, n.entries)
	if !n.leaf {
		for i := range c.entries {
			c.entries[i].child = cloneNode(c.entries[i].child, c)
		}
	}
	return c
}
