package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/space"
)

// bruteIndex is the oracle: a flat list with linear scans.
type bruteIndex struct {
	rects []space.Rect
	ids   []int
}

func (b *bruteIndex) insert(r space.Rect, id int) {
	b.rects = append(b.rects, r.Clone())
	b.ids = append(b.ids, id)
}

func (b *bruteIndex) remove(r space.Rect, id int) bool {
	for i := range b.ids {
		if b.ids[i] == id && b.rects[i].Equal(r) {
			b.rects = append(b.rects[:i], b.rects[i+1:]...)
			b.ids = append(b.ids[:i], b.ids[i+1:]...)
			return true
		}
	}
	return false
}

func (b *bruteIndex) searchPoint(p space.Point) []int {
	var out []int
	for i, r := range b.rects {
		if r.Contains(p) {
			out = append(out, b.ids[i])
		}
	}
	return out
}

func (b *bruteIndex) searchRect(q space.Rect) []int {
	var out []int
	for i, r := range b.rects {
		if r.Intersects(q) {
			out = append(out, b.ids[i])
		}
	}
	return out
}

func sameIDs(t *testing.T, got, want []int, ctx string) {
	t.Helper()
	g := append([]int(nil), got...)
	w := append([]int(nil), want...)
	sort.Ints(g)
	sort.Ints(w)
	if len(g) != len(w) {
		t.Fatalf("%s: got %v want %v", ctx, g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: got %v want %v", ctx, g, w)
		}
	}
}

func randRect(r *rand.Rand, dim int) space.Rect {
	rect := make(space.Rect, dim)
	for d := range rect {
		switch r.Intn(10) {
		case 0:
			rect[d] = space.Full()
		case 1:
			rect[d] = space.LeftOf(r.Float64() * 20)
		case 2:
			rect[d] = space.RightOf(r.Float64() * 20)
		default:
			lo := r.Float64() * 20
			rect[d] = space.Span(lo, lo+r.Float64()*8+0.01)
		}
	}
	return rect
}

func randPoint(r *rand.Rand, dim int) space.Point {
	p := make(space.Point, dim)
	for d := range p {
		p[d] = r.Float64()*24 - 2
	}
	return p
}

func TestNewPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0)
}

func TestInsertErrors(t *testing.T) {
	tr := New(2)
	if err := tr.Insert(space.Rect{space.Span(0, 1)}, 1); err == nil {
		t.Error("dim mismatch accepted")
	}
	if err := tr.Insert(space.Rect{space.Span(0, 1), space.Span(5, 5)}, 1); err == nil {
		t.Error("empty rect accepted")
	}
	if tr.Len() != 0 {
		t.Error("failed inserts changed size")
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr := New(3)
	if got := tr.SearchPoint(space.Point{1, 2, 3}); len(got) != 0 {
		t.Errorf("SearchPoint on empty = %v", got)
	}
	if got := tr.SearchRect(space.FullRect(3)); len(got) != 0 {
		t.Errorf("SearchRect on empty = %v", got)
	}
	if tr.Delete(space.FullRect(3), 0) {
		t.Error("Delete on empty succeeded")
	}
}

func TestSmallTree(t *testing.T) {
	tr := New(2)
	a := space.Rect{space.Span(0, 10), space.Span(0, 10)}
	b := space.Rect{space.Span(5, 15), space.Span(5, 15)}
	c := space.Rect{space.LeftOf(3), space.Full()}
	for i, r := range []space.Rect{a, b, c} {
		if err := tr.Insert(r, i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	sameIDs(t, tr.SearchPoint(space.Point{7, 7}), []int{0, 1}, "point (7,7)")
	sameIDs(t, tr.SearchPoint(space.Point{2, -100}), []int{2}, "point (2,-100)")
	sameIDs(t, tr.SearchPoint(space.Point{100, 100}), nil, "far point")
	sameIDs(t, tr.SearchRect(space.Rect{space.Span(9, 12), space.Span(9, 12)}), []int{0, 1}, "rect query")
}

func TestHalfOpenSemantics(t *testing.T) {
	tr := New(1)
	tr.Insert(space.Rect{space.Span(0, 5)}, 1)
	if got := tr.SearchPoint(space.Point{0}); len(got) != 0 {
		t.Error("lower boundary should be excluded")
	}
	if got := tr.SearchPoint(space.Point{5}); len(got) != 1 {
		t.Error("upper boundary should be included")
	}
}

func TestInsertManyMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := New(3)
	var oracle bruteIndex
	for i := 0; i < 800; i++ {
		rect := randRect(r, 3)
		if err := tr.Insert(rect, i); err != nil {
			t.Fatal(err)
		}
		oracle.insert(rect, i)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.depth() < 2 {
		t.Error("tree did not grow in depth; split never exercised")
	}
	for q := 0; q < 300; q++ {
		p := randPoint(r, 3)
		sameIDs(t, tr.SearchPoint(p), oracle.searchPoint(p), "point query")
	}
	for q := 0; q < 100; q++ {
		rect := randRect(r, 3)
		sameIDs(t, tr.SearchRect(rect), oracle.searchRect(rect), "rect query")
	}
}

func TestDeleteMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr := New(2)
	var oracle bruteIndex
	rects := make([]space.Rect, 400)
	for i := range rects {
		rects[i] = randRect(r, 2)
		if err := tr.Insert(rects[i], i); err != nil {
			t.Fatal(err)
		}
		oracle.insert(rects[i], i)
	}
	// Delete a random half, verifying queries after each batch.
	perm := r.Perm(len(rects))
	for k, i := range perm[:200] {
		if !tr.Delete(rects[i], i) {
			t.Fatalf("Delete(%d) failed", i)
		}
		if !oracle.remove(rects[i], i) {
			t.Fatalf("oracle remove(%d) failed", i)
		}
		if tr.Delete(rects[i], i) {
			t.Fatalf("double delete (%d) succeeded", i)
		}
		if k%40 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", k+1, err)
			}
			for q := 0; q < 40; q++ {
				p := randPoint(r, 2)
				sameIDs(t, tr.SearchPoint(p), oracle.searchPoint(p), "point after delete")
			}
		}
	}
	if tr.Len() != 200 {
		t.Fatalf("Len = %d after deletes", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAll(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr := New(2)
	rects := make([]space.Rect, 100)
	for i := range rects {
		rects[i] = randRect(r, 2)
		tr.Insert(rects[i], i)
	}
	for i := range rects {
		if !tr.Delete(rects[i], i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Tree remains usable.
	tr.Insert(rects[0], 7)
	sameIDs(t, tr.SearchRect(space.FullRect(2)), []int{7}, "reuse after drain")
}

func TestDeleteWrongRectFails(t *testing.T) {
	tr := New(1)
	tr.Insert(space.Rect{space.Span(0, 5)}, 1)
	if tr.Delete(space.Rect{space.Span(0, 6)}, 1) {
		t.Error("deleted with wrong rect")
	}
	if tr.Delete(space.Rect{space.Span(0, 5)}, 2) {
		t.Error("deleted with wrong id")
	}
	if tr.Len() != 1 {
		t.Error("size corrupted")
	}
}

func TestDuplicateRects(t *testing.T) {
	tr := New(1)
	r := space.Rect{space.Span(0, 5)}
	for i := 0; i < 50; i++ {
		if err := tr.Insert(r, i); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.SearchPoint(space.Point{3})
	if len(got) != 50 {
		t.Fatalf("got %d results for duplicate rects", len(got))
	}
	if !tr.Delete(r, 31) {
		t.Fatal("delete one duplicate failed")
	}
	if len(tr.SearchPoint(space.Point{3})) != 49 {
		t.Fatal("wrong count after duplicate delete")
	}
}

func TestSearchPointDimPanics(t *testing.T) {
	tr := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tr.SearchPoint(space.Point{1})
}

func TestQuickRandomOps(t *testing.T) {
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(2)
		var oracle bruteIndex
		type item struct {
			rect space.Rect
			id   int
		}
		var live []item
		nextID := 0
		for op := 0; op < 300; op++ {
			if len(live) == 0 || r.Intn(3) > 0 {
				rect := randRect(r, 2)
				tr.Insert(rect, nextID)
				oracle.insert(rect, nextID)
				live = append(live, item{rect, nextID})
				nextID++
			} else {
				i := r.Intn(len(live))
				it := live[i]
				if !tr.Delete(it.rect, it.id) {
					return false
				}
				oracle.remove(it.rect, it.id)
				live = append(live[:i], live[i+1:]...)
			}
		}
		if tr.Len() != len(live) {
			return false
		}
		if err := tr.checkInvariants(); err != nil {
			return false
		}
		for q := 0; q < 30; q++ {
			p := randPoint(r, 2)
			got := tr.SearchPoint(p)
			want := oracle.searchPoint(p)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert1000(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rects := make([]space.Rect, 1000)
	for i := range rects {
		rects[i] = randRect(r, 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(4)
		for j, rc := range rects {
			tr.Insert(rc, j)
		}
	}
}

func BenchmarkSearchPoint(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := New(4)
	for j := 0; j < 5000; j++ {
		tr.Insert(randRect(r, 4), j)
	}
	pts := make([]space.Point, 256)
	for i := range pts {
		pts[i] = randPoint(r, 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.SearchPoint(pts[i%len(pts)])
	}
}
