// Command pubsub-bench regenerates every table and figure of the ICDCS
// 2002 paper's evaluation.
//
// Usage:
//
//	pubsub-bench [flags] <experiment>
//
// Experiments:
//
//	table1    Table 1 — unicast/broadcast/ideal costs, regionalism 0.4
//	table2    Table 2 — unicast/broadcast/ideal costs, no regionalism
//	baseline  §5.2 absolute costs on the stock workload (1-mode gaussian)
//	fig7      Figure 7 — improvement %% vs number of groups, all algorithms
//	fig8      Figure 8 — No-Loss quality vs pool size and iterations
//	fig9      Figure 9 — Figure 7 repeated on two different networks
//	fig10     Figure 10 — quality and running time vs cell budget
//	fig11     Figure 11 — quality vs running time (same sweep as fig10)
//	scenarios algorithm comparison across 1-, 4- and 9-mode publications
//	interest  §3 interest-fraction profile: Gryphon regime vs paper regime
//	frontier  grid-resolution and dimensionality sweeps (§6 open issues)
//	ablation  design-choice studies: Fig 5 threshold, outlier removal,
//	          last-mile link costs
//	faults    reliability sweep: broker retry/dedup stats vs drop probability
//	recovery  self-healing timeline: partition → breaker open → quarantine →
//	          auto-refresh, with delivered cost and shed rate per window;
//	          writes results/recovery.csv and results/recovery_metrics.json
//	          unless -csv / -metrics override the destinations
//	churn     live Subscribe/Unsubscribe churn against the snapshot
//	          decision plane: swap counts and churn-op latency per rate
//	durable   crash–restart durability timeline: clean incarnation →
//	          scheduled mid-stream crash → journal-replay recovery, with
//	          preserved counters and recovery stats per incarnation
//	federate  federation sweep: the evaluation stream through 1-, 2- and
//	          4-shard rectangle-partitioned federations, exactly-once
//	          checked against the brute-force match, with fan-out and
//	          merge-latency accounting per width
//	all       run everything above in order
//
// Flags:
//
//	-seed N      master random seed (default 1)
//	-events N    evaluation events per measurement (default 500)
//	-subs N      subscriptions in the §5.1 workload (default 1000)
//	-modes N     publication mixture modes: 1, 4 or 9 (default 1)
//	-quick       shrink all sweeps for a fast smoke run
//	-workers N   clustering worker count inside each algorithm; 0 (the
//	             default) resolves to GOMAXPROCS, negatives are rejected.
//	             The effective parallelism is echoed in each run header.
//	-churn-rate R      churn: single ops-per-event rate (0 = built-in sweep)
//	-decide-workers N  churn: broker decision workers (0 = GOMAXPROCS)
//	-data-dir DIR      durable: broker state directory (default: a fresh
//	                   temp directory, removed afterwards); SIGINT/SIGTERM
//	                   close the live broker cleanly before exiting
//	-csv DIR     additionally write CSV files into DIR
//	-metrics F   write a telemetry snapshot (JSON) to F; fig7 additionally
//	             collects per-algorithm cost distributions with
//	             p50/p95/p99, clustering times and matcher waste ratios
//	-cpuprofile F  write a pprof CPU profile of the run to F
//	-memprofile F  write a pprof heap profile to F on exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/noloss"
	"repro/internal/telemetry"
)

type options struct {
	seed          int64
	events        int
	subs          int
	modes         int
	quick         bool
	parallel      int
	workers       int
	churnRate     float64
	decideWorkers int
	dataDir       string
	csvDir        string
	metrics       string
	cpuprofile    string
	memprofile    string
}

func main() {
	var opt options
	flag.Int64Var(&opt.seed, "seed", 1, "master random seed")
	flag.IntVar(&opt.events, "events", 500, "evaluation events per measurement")
	flag.IntVar(&opt.subs, "subs", 1000, "subscriptions in the §5.1 workload")
	flag.IntVar(&opt.modes, "modes", 1, "publication mixture modes (1, 4 or 9)")
	flag.BoolVar(&opt.quick, "quick", false, "shrink sweeps for a fast run")
	flag.IntVar(&opt.parallel, "parallel", 0, "worker count for fig7 (0 = sequential, -1 = GOMAXPROCS)")
	flag.IntVar(&opt.workers, "workers", 0, "clustering worker count inside each algorithm (0 = GOMAXPROCS)")
	flag.Float64Var(&opt.churnRate, "churn-rate", 0, "churn: single ops-per-event rate (0 = built-in sweep)")
	flag.IntVar(&opt.decideWorkers, "decide-workers", 0, "churn: broker decision workers (0 = GOMAXPROCS)")
	flag.StringVar(&opt.dataDir, "data-dir", "", "durable: broker state directory (default: fresh temp dir)")
	flag.StringVar(&opt.csvDir, "csv", "", "directory for CSV output")
	flag.StringVar(&opt.metrics, "metrics", "", "file for a JSON telemetry snapshot (fig7)")
	flag.StringVar(&opt.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&opt.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: pubsub-bench [flags] table1|table2|baseline|fig7|fig8|fig9|fig10|fig11|scenarios|ablation|faults|recovery|churn|durable|federate|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if opt.workers < 0 {
		fmt.Fprintf(os.Stderr, "pubsub-bench: -workers %d is negative; use 0 for GOMAXPROCS\n", opt.workers)
		os.Exit(2)
	}
	if err := profiledRun(flag.Arg(0), opt); err != nil {
		fmt.Fprintf(os.Stderr, "pubsub-bench: %v\n", err)
		os.Exit(1)
	}
}

// profiledRun wraps run with the optional CPU/heap profilers, keeping the
// profile flushes out of os.Exit's way.
func profiledRun(name string, opt options) error {
	if opt.cpuprofile != "" {
		f, err := os.Create(opt.cpuprofile)
		if err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	err := run(name, opt)
	if opt.memprofile != "" {
		f, merr := os.Create(opt.memprofile)
		if merr != nil {
			return fmt.Errorf("mem profile: %w", merr)
		}
		defer f.Close()
		runtime.GC()
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			return fmt.Errorf("mem profile: %w", merr)
		}
	}
	return err
}

// effectiveWorkers resolves the -workers flag the same way the cluster
// package does: 0 means GOMAXPROCS.
func (o options) effectiveWorkers() int {
	if o.workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.workers
}

func run(name string, opt options) error {
	if name != "all" {
		fmt.Printf("# %s: clustering parallelism %d worker(s) (-workers %d, 0 ⇒ GOMAXPROCS)\n",
			name, opt.effectiveWorkers(), opt.workers)
	}
	switch name {
	case "table1":
		return runTable(opt, "Table 1 (degree 0.4 regionalism)", 0.4, "table1.csv")
	case "table2":
		return runTable(opt, "Table 2 (no regionalism)", 0.0, "table2.csv")
	case "baseline":
		return runBaseline(opt)
	case "fig7":
		return runFig7(opt)
	case "fig8":
		return runFig8(opt)
	case "fig9":
		return runFig9(opt)
	case "fig10", "fig11":
		return runFig10(opt)
	case "ablation":
		return runAblation(opt)
	case "scenarios":
		return runScenarios(opt)
	case "interest":
		return runInterest(opt)
	case "frontier":
		return runFrontier(opt)
	case "faults":
		return runFaults(opt)
	case "recovery":
		return runRecovery(opt)
	case "churn":
		return runChurn(opt)
	case "durable":
		return runDurable(opt)
	case "federate":
		return runFederateSweep(opt)
	case "all":
		for _, n := range []string{"table1", "table2", "baseline", "fig7", "fig8", "fig9", "fig10", "scenarios", "interest", "frontier", "ablation", "faults", "recovery", "churn", "durable", "federate"} {
			if err := run(n, opt); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func (o options) envConfig() experiments.StockEnvConfig {
	cfg := experiments.StockEnvConfig{
		NumSubs:    o.subs,
		PubModes:   o.modes,
		EvalEvents: o.events,
		Seed:       o.seed,
	}
	if o.quick {
		cfg.NumSubs = min(cfg.NumSubs, 400)
		cfg.TrainEvents = 800
		cfg.EvalEvents = min(o.events, 200)
	}
	return cfg
}

func (o options) algorithms() []experiments.AlgorithmSpec {
	specs := experiments.DefaultAlgorithms()
	if o.quick {
		specs = []experiments.AlgorithmSpec{
			{Alg: &cluster.KMeans{Variant: cluster.MacQueen}, Budget: 800},
			{Alg: &cluster.KMeans{Variant: cluster.Forgy}, Budget: 800},
			{Alg: &cluster.MST{}, Budget: 800},
			{Alg: &cluster.Pairwise{Approx: true}, Budget: 500},
		}
	}
	// -workers pins the clustering parallelism of every algorithm; with the
	// flag at its default 0 the algorithms keep their own default, which
	// already resolves to GOMAXPROCS. RunFig7Parallel re-divides this when
	// job-level parallelism is also requested.
	if o.workers > 0 {
		for _, s := range specs {
			if p, ok := s.Alg.(cluster.Parallel); ok {
				p.SetParallelism(o.workers)
			}
		}
	}
	return specs
}

func (o options) nolossConfig() noloss.Config {
	if o.quick {
		return noloss.Config{PoolSize: 1000, Iterations: 4}
	}
	return experiments.DefaultNoLoss()
}

func (o options) writeCSV(name string, render func(f *os.File) error) error {
	if o.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(o.csvDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return render(f)
}

func runTable(opt options, title string, regionalism float64, csvName string) error {
	rows := experiments.Table1Rows()
	if regionalism == 0 {
		rows = experiments.Table2Rows()
	}
	if opt.quick {
		rows = rows[:6]
	}
	events := opt.events
	if opt.quick {
		events = min(events, 120)
	}
	got, err := experiments.RunTable(experiments.TableConfig{
		Regionalism: regionalism,
		Rows:        rows,
		Events:      events,
		Seed:        opt.seed,
	})
	if err != nil {
		return err
	}
	if err := experiments.RenderTable(os.Stdout, title, got); err != nil {
		return err
	}
	return opt.writeCSV(csvName, func(f *os.File) error {
		return experiments.RenderTableCSV(f, got)
	})
}

func runBaseline(opt options) error {
	r, err := experiments.RunBaseline(opt.envConfig())
	if err != nil {
		return err
	}
	experiments.RenderBaseline(os.Stdout, r)
	return nil
}

func runFig7(opt options) error {
	env, err := experiments.NewStockEnv(opt.envConfig())
	if err != nil {
		return err
	}
	ks := experiments.DefaultKs()
	if opt.quick {
		ks = []int{10, 40, 80}
	}
	pts, reg, err := opt.fig7(env, ks)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Figure 7: improvement %% vs groups (%d-mode publications)", env.Config.PubModes)
	if err := experiments.RenderFig7(os.Stdout, title, pts); err != nil {
		return err
	}
	if err := opt.writeMetrics(reg); err != nil {
		return err
	}
	return opt.writeCSV("fig7.csv", func(f *os.File) error {
		return experiments.RenderFig7CSV(f, pts)
	})
}

// fig7 dispatches between the sequential, parallel and telemetry-observed
// Figure 7 runners. The registry is non-nil only when -metrics is set.
func (o options) fig7(env *experiments.StockEnv, ks []int) ([]experiments.Fig7Point, *telemetry.Registry, error) {
	if o.metrics != "" {
		reg := telemetry.NewRegistry()
		pts, err := experiments.RunFig7Observed(env, ks, o.algorithms(), o.nolossConfig(), reg)
		return pts, reg, err
	}
	if o.parallel != 0 {
		workers := o.parallel
		if workers < 0 {
			workers = 0 // RunFig7Parallel resolves 0 to GOMAXPROCS
		}
		pts, err := experiments.RunFig7Parallel(env, ks, o.algorithms(), o.nolossConfig(), workers)
		return pts, nil, err
	}
	pts, err := experiments.RunFig7(env, ks, o.algorithms(), o.nolossConfig())
	return pts, nil, err
}

// writeMetrics dumps a registry snapshot as JSON to the -metrics file.
func (o options) writeMetrics(reg *telemetry.Registry) error {
	if o.metrics == "" || reg == nil {
		return nil
	}
	f, err := os.Create(o.metrics)
	if err != nil {
		return err
	}
	defer f.Close()
	return telemetry.WriteJSON(f, reg)
}

func runFig8(opt options) error {
	env, err := experiments.NewStockEnv(opt.envConfig())
	if err != nil {
		return err
	}
	cfg := experiments.DefaultFig8()
	if opt.quick {
		cfg = experiments.Fig8Config{
			PoolSizes:  []int{500, 2000},
			Iterations: []int{1, 4},
			FixedPool:  1000,
			FixedIters: 3,
			K:          80,
		}
	}
	pts, err := experiments.RunFig8(env, cfg)
	if err != nil {
		return err
	}
	if err := experiments.RenderFig8(os.Stdout, "Figure 8: No-Loss parameter sensitivity", pts); err != nil {
		return err
	}
	return opt.writeCSV("fig8.csv", func(f *os.File) error {
		return experiments.RenderFig8CSV(f, pts)
	})
}

func runFig9(opt options) error {
	ks := experiments.DefaultKs()
	if opt.quick {
		ks = []int{20, 60}
	}
	series, err := experiments.RunFig9(opt.envConfig(), [2]int64{opt.seed, opt.seed + 100},
		ks, opt.algorithms(), opt.nolossConfig())
	if err != nil {
		return err
	}
	for i, s := range series {
		title := fmt.Sprintf("Figure 9 (network %d, seed %d)", i+1, s.Seed)
		if err := experiments.RenderFig7(os.Stdout, title, s.Points); err != nil {
			return err
		}
		name := fmt.Sprintf("fig9_net%d.csv", i+1)
		pts := s.Points
		if err := opt.writeCSV(name, func(f *os.File) error {
			return experiments.RenderFig7CSV(f, pts)
		}); err != nil {
			return err
		}
	}
	return nil
}

func runFig10(opt options) error {
	env, err := experiments.NewStockEnv(opt.envConfig())
	if err != nil {
		return err
	}
	cfg := experiments.DefaultFig10()
	if opt.quick {
		cfg = experiments.Fig10Config{Budgets: []int{200, 800}, K: 60}
	}
	pts, err := experiments.RunFig10(env, opt.algorithms(), cfg)
	if err != nil {
		return err
	}
	if err := experiments.RenderFig10(os.Stdout,
		"Figures 10 & 11: quality and clustering time vs cell budget", pts); err != nil {
		return err
	}
	return opt.writeCSV("fig10.csv", func(f *os.File) error {
		return experiments.RenderFig10CSV(f, pts)
	})
}

func runScenarios(opt options) error {
	k := 100
	specs := experiments.ScenarioSpecs()
	if opt.quick {
		k = 50
		specs = specs[1:2] // forgy only
		for i := range specs {
			specs[i].Budget = 800
		}
	}
	pts, err := experiments.RunScenarios(opt.envConfig(), k, specs)
	if err != nil {
		return err
	}
	if err := experiments.RenderScenarios(os.Stdout,
		"Publication scenarios: 1-, 4- and 9-mode mixtures (K=100)", pts); err != nil {
		return err
	}
	return opt.writeCSV("scenarios.csv", func(f *os.File) error {
		return experiments.RenderScenariosCSV(f, pts)
	})
}

func runInterest(opt options) error {
	events := opt.events
	if opt.quick {
		events = 150
	}
	ps, err := experiments.RunInterestProfile(nil, events, opt.seed)
	if err != nil {
		return err
	}
	return experiments.RenderInterestProfile(os.Stdout,
		"Interest profile (§3): fraction of nodes interested per event", ps)
}

func runFrontier(opt options) error {
	env, err := experiments.NewStockEnv(opt.envConfig())
	if err != nil {
		return err
	}
	k := 100
	factors := []float64(nil)
	dims := []int(nil)
	if opt.quick {
		k = 50
		factors = []float64{0.5, 1}
		dims = []int{2, 4}
	}
	rp, err := experiments.RunGridResolution(env, k, factors)
	if err != nil {
		return err
	}
	if err := experiments.RenderResolution(os.Stdout,
		"Frontier: grid resolution (× the default cells per axis)", rp); err != nil {
		return err
	}
	dp, err := experiments.RunDimensionality(experiments.StockEnvConfig{}.TopologyOrDefault(), k, dims, opt.seed)
	if err != nil {
		return err
	}
	return experiments.RenderDimensionality(os.Stdout,
		"Frontier: event-space dimensionality (synthetic workload, 8 cells/axis)", dp)
}

func runAblation(opt options) error {
	env, err := experiments.NewStockEnv(opt.envConfig())
	if err != nil {
		return err
	}
	k := 100
	budget := 6000
	thresholds := []float64(nil)
	outlierFracs := []float64(nil)
	lastMile := []float64(nil)
	if opt.quick {
		k = 60
		budget = 1000
		thresholds = []float64{0, 0.1}
		outlierFracs = []float64{0, 0.1}
		lastMile = []float64{1, 4}
	}

	var all []experiments.AblationPoint
	th, err := experiments.RunThresholdAblation(env, k, thresholds)
	if err != nil {
		return err
	}
	if err := experiments.RenderAblation(os.Stdout,
		"Ablation: Fig 5 multicast threshold (Forgy, K=100)", "app-level %", th); err != nil {
		return err
	}
	all = append(all, th...)

	ol, err := experiments.RunOutlierAblation(env, k, budget, outlierFracs)
	if err != nil {
		return err
	}
	if err := experiments.RenderAblation(os.Stdout,
		"Ablation: outlier removal at oversized cell budget (§4.1 future work)", "cells removed", ol); err != nil {
		return err
	}
	all = append(all, ol...)

	lm, err := experiments.RunLastMileAblation(opt.envConfig(), k, lastMile)
	if err != nil {
		return err
	}
	if err := experiments.RenderAblation(os.Stdout,
		"Ablation: last-mile link cost factor (§6 extension 2)", "unicast baseline", lm); err != nil {
		return err
	}
	all = append(all, lm...)

	dynKs := []int(nil)
	if opt.quick {
		dynKs = []int{20, 60}
	}
	dm, err := experiments.RunDynamicMethodAblation(env, dynKs)
	if err != nil {
		return err
	}
	if err := experiments.RenderAblation(os.Stdout,
		"Ablation: §1 dynamic distribution-method decision (param = K; extra = dynamic %)", "dynamic %", dm); err != nil {
		return err
	}
	all = append(all, dm...)

	sampleSizes := []int(nil)
	if opt.quick {
		sampleSizes = []int{200, 800}
	}
	pb, err := experiments.RunProbAblation(env, k, budget/2, sampleSizes)
	if err != nil {
		return err
	}
	if err := experiments.RenderAblation(os.Stdout,
		"Ablation: probability estimator (param = sample size; 0 = analytic)", "expected waste", pb); err != nil {
		return err
	}
	all = append(all, pb...)

	return opt.writeCSV("ablation.csv", func(f *os.File) error {
		return experiments.RenderAblationCSV(f, all)
	})
}

func runFaults(opt options) error {
	env, err := experiments.NewStockEnv(opt.envConfig())
	if err != nil {
		return err
	}
	cfg := experiments.FaultSweepConfig{FaultSeed: opt.seed + 200}
	if opt.quick {
		cfg.DropProbs = []float64{0, 0.1, 0.3}
		cfg.Groups = 30
		cfg.CellBudget = 800
	}
	pts, err := experiments.RunFaultSweep(env, cfg)
	if err != nil {
		return err
	}
	if err := experiments.RenderFaultSweep(os.Stdout,
		"Fault sweep: broker reliability vs per-attempt drop probability", pts); err != nil {
		return err
	}
	return opt.writeCSV("faults.csv", func(f *os.File) error {
		return experiments.RenderFaultSweepCSV(f, pts)
	})
}

// runChurn drives live subscription churn through the snapshot decision
// plane: Poisson Subscribe/Unsubscribe ops interleaved with the evaluation
// event stream, reporting swap counts and churn-op latency per rate.
func runChurn(opt options) error {
	env, err := experiments.NewStockEnv(opt.envConfig())
	if err != nil {
		return err
	}
	cfg := experiments.ChurnSweepConfig{
		DecideWorkers: opt.decideWorkers,
		Seed:          opt.seed + 400,
	}
	if opt.churnRate > 0 {
		cfg.Rates = []float64{opt.churnRate}
	}
	if opt.quick {
		cfg.Groups = 20
		cfg.CellBudget = 400
		if opt.churnRate == 0 {
			cfg.Rates = []float64{0.05, 0.5}
		}
	}
	pts, err := experiments.RunChurn(env, cfg)
	if err != nil {
		return err
	}
	if err := experiments.RenderChurn(os.Stdout,
		"Churn sweep: live Subscribe/Unsubscribe vs event rate (snapshot decision plane)", pts); err != nil {
		return err
	}
	return opt.writeCSV("churn.csv", func(f *os.File) error {
		return experiments.RenderChurnCSV(f, pts)
	})
}

// runFederateSweep replays the evaluation stream through federations of
// increasing shard counts, verifying exactly-once delivery against the
// brute-force match and reporting fan-out and merge-latency per width.
func runFederateSweep(opt options) error {
	env, err := experiments.NewStockEnv(opt.envConfig())
	if err != nil {
		return err
	}
	cfg := experiments.FederateSweepConfig{}
	if opt.quick {
		cfg.ShardCounts = []int{1, 4}
		cfg.Groups = 20
		cfg.CellBudget = 400
	}
	pts, err := experiments.RunFederate(env, cfg)
	if err != nil {
		return err
	}
	if err := experiments.RenderFederate(os.Stdout,
		"Federation sweep: rectangle-partitioned shards with cross-shard exactly-once merge", pts); err != nil {
		return err
	}
	return opt.writeCSV("federate.csv", func(f *os.File) error {
		return experiments.RenderFederateCSV(f, pts)
	})
}

// runRecovery drives the self-healing timeline experiment. Unlike the
// other modes it always produces artifacts: the per-window series lands in
// results/recovery.csv and the full result (series, phase costs, broker
// and breaker stats) in results/recovery_metrics.json, unless -csv or
// -metrics point elsewhere.
func runRecovery(opt options) error {
	env, err := experiments.NewStockEnv(opt.envConfig())
	if err != nil {
		return err
	}
	cfg := experiments.RecoveryConfig{Seed: opt.seed + 300}
	if opt.quick {
		cfg.Groups = 12
		cfg.CellBudget = 300
		cfg.PhaseEvents = 80
		cfg.Window = 10
	}
	res, err := experiments.RunRecovery(env, cfg)
	if err != nil {
		return err
	}
	if err := experiments.RenderRecovery(os.Stdout,
		"Recovery: partition → detection → automatic re-clustering", res); err != nil {
		return err
	}
	o := opt
	if o.csvDir == "" {
		o.csvDir = "results"
	}
	if err := o.writeCSV("recovery.csv", func(f *os.File) error {
		return experiments.RenderRecoveryCSV(f, res)
	}); err != nil {
		return err
	}
	metrics := opt.metrics
	if metrics == "" {
		metrics = filepath.Join(o.csvDir, "recovery_metrics.json")
	}
	if err := os.MkdirAll(filepath.Dir(metrics), 0o755); err != nil {
		return err
	}
	f, err := os.Create(metrics)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// activeCloser holds the close function of the currently open durable
// broker (nil when none); the SIGINT/SIGTERM handler invokes it so an
// interrupted run writes a final checkpoint instead of dying mid-stream.
var activeCloser atomic.Value // of func()

// installSignalHandler arms SIGINT/SIGTERM to close the active durable
// broker before exiting. Installed once, on the first durable run.
var installSignalHandler = sync.OnceFunc(func() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		if f, ok := activeCloser.Load().(func()); ok && f != nil {
			fmt.Fprintln(os.Stderr, "pubsub-bench: interrupted; closing broker")
			f()
		}
		os.Exit(1)
	}()
})

// runDurable drives the crash–restart durability timeline: a clean broker
// incarnation (checkpoint on close), one killed mid-stream by a scheduled
// crash, and a recovery incarnation replaying the journal tail.
func runDurable(opt options) error {
	installSignalHandler()
	env, err := experiments.NewStockEnv(opt.envConfig())
	if err != nil {
		return err
	}
	dir := opt.dataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "pubsub-durable-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	cfg := experiments.DurableConfig{
		RegisterCloser: func(f func()) {
			if f == nil {
				activeCloser.Store(func() {})
			} else {
				activeCloser.Store(f)
			}
		},
	}
	if opt.quick {
		cfg.Groups = 12
		cfg.CellBudget = 300
		cfg.CrashAtAppend = 80
	}
	res, err := experiments.RunDurable(env, dir, cfg)
	if err != nil {
		return err
	}
	return experiments.RenderDurable(os.Stdout,
		"Durable broker: clean run → mid-stream crash → journal-replay recovery", res)
}
