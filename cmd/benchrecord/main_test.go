package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testEntry(label string, ns float64) Entry {
	return Entry{
		Label: label, Date: "2026-08-08T00:00:00Z",
		Benchmarks: map[string]Stat{"BenchmarkX": {NsOp: ns, Count: 1}},
	}
}

// TestUpdateRefusesDuplicateLabel: recording the same label twice must
// fail, and the error must name the existing entry's date so the operator
// can tell which run holds the label.
func TestUpdateRefusesDuplicateLabel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := update(path, testEntry("baseline", 100)); err != nil {
		t.Fatal(err)
	}
	err := update(path, testEntry("baseline", 50))
	if err == nil {
		t.Fatal("duplicate label accepted")
	}
	if !strings.Contains(err.Error(), "baseline") || !strings.Contains(err.Error(), "2026-08-08T00:00:00Z") {
		t.Fatalf("error %q does not name the colliding label and its date", err)
	}
	// The refused write must not have touched the file.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Entries) != 1 {
		t.Fatalf("file has %d entries after refused duplicate, want 1", len(f.Entries))
	}
}

// TestUpdateSpeedupVsFirst: later entries under fresh labels still append
// and carry speedups against the first entry.
func TestUpdateSpeedupVsFirst(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := update(path, testEntry("baseline", 100)); err != nil {
		t.Fatal(err)
	}
	if err := update(path, testEntry("tuned", 50)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(f.Entries))
	}
	if got := f.Entries[1].Benchmarks["BenchmarkX"].SpeedupVsFirst; got != 2 {
		t.Fatalf("SpeedupVsFirst = %v, want 2", got)
	}
}
