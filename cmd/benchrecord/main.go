// Command benchrecord appends a labelled entry to a JSON benchmark
// trajectory file (BENCH_cluster.json at the repo root) from `go test
// -bench` text output on stdin. Each entry stores per-benchmark mean
// ns/op, B/op and allocs/op aggregated across -count repetitions,
// benchstat-style, plus the speedup of every benchmark relative to the
// file's first entry — so the trajectory reads as before/after columns.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 3 ./internal/cluster/ |
//	    go run ./cmd/benchrecord -file BENCH_cluster.json -label "post-PR"
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// Stat is one benchmark's aggregate over the repetitions in a run.
type Stat struct {
	NsOp   float64 `json:"ns_op"`          // mean ns/op
	MinNs  float64 `json:"min_ns_op"`      // fastest repetition
	MaxNs  float64 `json:"max_ns_op"`      // slowest repetition
	BOp    float64 `json:"b_op,omitempty"` // mean B/op (with -benchmem)
	Allocs float64 `json:"allocs_op,omitempty"`
	Count  int     `json:"count"` // number of repetitions aggregated
	// Metrics holds custom units emitted via testing.B.ReportMetric
	// (e.g. "p99-lag-ns", "failover-ns"), mean across repetitions.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// SpeedupVsFirst is first-entry ns/op ÷ this entry's ns/op for
	// benchmarks present in both; > 1 means faster than the baseline.
	SpeedupVsFirst float64 `json:"speedup_vs_first,omitempty"`
}

// Entry is one labelled benchmark run.
type Entry struct {
	Label      string          `json:"label"`
	Date       string          `json:"date"`
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Benchmarks map[string]Stat `json:"benchmarks"`
}

// File is the whole trajectory: entries in chronological order, the first
// being the recorded baseline every later entry is compared against.
type File struct {
	Schema  string  `json:"schema"`
	Entries []Entry `json:"entries"`
}

// benchLine matches go test benchmark result lines, e.g.
// "BenchmarkForgy-8   3   41002 ns/op   160 B/op   2 allocs/op".
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// metricPair matches one "value unit" column (units always start with a
// letter, so iteration counts never match); units past the standard
// three are custom metrics from testing.B.ReportMetric.
var metricPair = regexp.MustCompile(`([\d.eE+-]+) ([A-Za-z][\w/.-]*)`)

// customMetrics extracts ReportMetric columns from a benchmark result
// line, skipping the standard ns/op, B/op and allocs/op units.
func customMetrics(line string) map[string]float64 {
	var out map[string]float64
	for _, m := range metricPair.FindAllStringSubmatch(line, -1) {
		switch m[2] {
		case "ns/op", "B/op", "allocs/op", "MB/s":
			continue
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		if out == nil {
			out = map[string]float64{}
		}
		out[m[2]] = v
	}
	return out
}

func main() {
	file := flag.String("file", "BENCH_cluster.json", "trajectory file to update")
	label := flag.String("label", "local", "label for this entry")
	flag.Parse()

	entry, err := parse(os.Stdin, *label)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	if err := update(*file, entry); err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(entry.Benchmarks))
	for n := range entry.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := entry.Benchmarks[n]
		fmt.Printf("%-40s %14.0f ns/op  ×%d\n", n, s.NsOp, s.Count)
	}
	fmt.Printf("recorded %d benchmark(s) as %q in %s\n", len(names), *label, *file)
}

// parse aggregates the benchmark lines on r into one entry.
func parse(r *os.File, label string) (Entry, error) {
	type acc struct {
		ns, b, allocs []float64
		metrics       map[string][]float64
	}
	accs := map[string]*acc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		a := accs[m[1]]
		if a == nil {
			a = &acc{}
			accs[m[1]] = a
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return Entry{}, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		a.ns = append(a.ns, ns)
		if m[3] != "" {
			v, _ := strconv.ParseFloat(m[3], 64)
			a.b = append(a.b, v)
		}
		if m[4] != "" {
			v, _ := strconv.ParseFloat(m[4], 64)
			a.allocs = append(a.allocs, v)
		}
		for unit, v := range customMetrics(sc.Text()) {
			if a.metrics == nil {
				a.metrics = map[string][]float64{}
			}
			a.metrics[unit] = append(a.metrics[unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return Entry{}, err
	}
	if len(accs) == 0 {
		return Entry{}, fmt.Errorf("no benchmark result lines on stdin")
	}
	e := Entry{
		Label:      label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]Stat{},
	}
	for name, a := range accs {
		st := Stat{Count: len(a.ns), MinNs: a.ns[0], MaxNs: a.ns[0]}
		for _, v := range a.ns {
			st.NsOp += v
			if v < st.MinNs {
				st.MinNs = v
			}
			if v > st.MaxNs {
				st.MaxNs = v
			}
		}
		st.NsOp /= float64(len(a.ns))
		st.BOp = mean(a.b)
		st.Allocs = mean(a.allocs)
		for unit, vs := range a.metrics {
			if st.Metrics == nil {
				st.Metrics = map[string]float64{}
			}
			st.Metrics[unit] = mean(vs)
		}
		e.Benchmarks[name] = st
	}
	return e, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// update loads the trajectory file (if present), appends the entry with
// speedups computed against the first entry, and writes it back.
func update(path string, entry Entry) error {
	f := File{Schema: "bench-trajectory/v1"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	// Labels name points on the trajectory; recording the same label twice
	// would silently fork it (whichever entry a reader finds first wins).
	// Refuse, pointing at the collision, so the caller picks a new label.
	for _, ex := range f.Entries {
		if ex.Label == entry.Label {
			return fmt.Errorf("label %q already recorded in %s on %s; pick a new label",
				entry.Label, path, ex.Date)
		}
	}
	if len(f.Entries) > 0 {
		base := f.Entries[0].Benchmarks
		for name, st := range entry.Benchmarks {
			if b, ok := base[name]; ok && st.NsOp > 0 {
				st.SpeedupVsFirst = b.NsOp / st.NsOp
				entry.Benchmarks[name] = st
			}
		}
	}
	f.Entries = append(f.Entries, entry)
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
