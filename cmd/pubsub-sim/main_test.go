package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// smallOpts is a fast fault-profile run small enough for -short.
func smallOpts() options {
	return options{
		alg:       "forgy",
		groups:    20,
		subs:      200,
		modes:     1,
		events:    60,
		budget:    400,
		seed:      7,
		drop:      0.2,
		crashNode: -1,
		retries:   3,
		traceRate: 1,
		traceCap:  256,
	}
}

// TestValidateFlags: satellite guard — malformed fault/observability flags
// are rejected up front.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
		want   string
	}{
		{"drop-high", func(o *options) { o.drop = 1.5 }, "-drop"},
		{"drop-negative", func(o *options) { o.drop = -0.1 }, "-drop"},
		{"link-drop", func(o *options) { o.linkDrop = 2 }, "-link-drop"},
		{"dup", func(o *options) { o.dup = -1 }, "-dup"},
		{"retries", func(o *options) { o.retries = -1 }, "-retries"},
		{"trace-rate", func(o *options) { o.traceRate = 1.01 }, "-trace-rate"},
		{"trace-cap", func(o *options) { o.traceCap = 0 }, "-trace-cap"},
		{"max-inflight", func(o *options) { o.maxInflight = -1 }, "-max-inflight"},
		{"shed-policy", func(o *options) { o.shedPolicy = "bogus" }, "-shed-policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := smallOpts()
			tc.mutate(&opt)
			err := opt.validate()
			if err == nil {
				t.Fatalf("validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the flag %s", err, tc.want)
			}
		})
	}
	if err := smallOpts().validate(); err != nil {
		t.Fatalf("validate rejected sane flags: %v", err)
	}
}

// TestHealthReplay: the overload-protection flags alone enable the broker
// replay, attach the health subsystem, and the run completes even when
// admission control rejects part of the stream.
func TestHealthReplay(t *testing.T) {
	opt := smallOpts()
	opt.drop = 0 // no fault flags: health flags must trigger the replay
	opt.maxInflight = 4
	opt.shedPolicy = "reject"
	opt.autoRefresh = true
	if !opt.healthRequested() || opt.faultsRequested() {
		t.Fatal("flag plumbing wrong")
	}
	if err := opt.validate(); err != nil {
		t.Fatal(err)
	}
	if err := run(opt); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestDurableReplayRestart: -data-dir alone enables the broker replay, and
// a second run over the same directory recovers the clean checkpoint the
// first run's Close wrote.
func TestDurableReplayRestart(t *testing.T) {
	opt := smallOpts()
	opt.drop = 0 // no fault flags: -data-dir must trigger the replay itself
	opt.dataDir = t.TempDir()
	if opt.faultsRequested() || opt.healthRequested() {
		t.Fatal("flag plumbing wrong")
	}
	if err := run(opt); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(opt); err != nil {
		t.Fatalf("second run: %v", err)
	}
}

// TestServeEndToEnd runs a full faulty replay with -http and probes every
// observability endpoint on the live server.
func TestServeEndToEnd(t *testing.T) {
	opt := smallOpts()
	opt.httpAddr = "127.0.0.1:0"

	var addr string
	testHookServe = func(a string) { addr = a; probeEndpoints(t, a) }
	defer func() { testHookServe = nil }()

	if err := run(opt); err != nil {
		t.Fatalf("run: %v", err)
	}
	if addr == "" {
		t.Fatal("telemetry server never started")
	}
}

func probeEndpoints(t *testing.T, addr string) {
	t.Helper()
	base := "http://" + addr
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}

	// Prometheus exposition with both broker and core scopes populated.
	prom := get("/metrics")
	for _, want := range []string{
		"repro_broker_published",
		"repro_broker_deliver_latency_ns_bucket",
		"repro_core_decides",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %s:\n%.400s", want, prom)
		}
	}

	// JSON snapshot parses and carries a non-trivial delivery count.
	var snap map[string]struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if snap["broker"].Counters["deliveries"] == 0 {
		t.Errorf("/metrics.json reports zero deliveries: %+v", snap)
	}

	// Trace export is JSONL: every line parses and spans include a decide.
	traces := get("/trace")
	sawDecide := false
	sc := bufio.NewScanner(strings.NewReader(traces))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		lines++
		var rec struct {
			Seq   uint64 `json:"seq"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("/trace line %d invalid JSON: %v\n%s", lines, err, sc.Text())
		}
		for _, s := range rec.Spans {
			if s.Name == "decide" {
				sawDecide = true
			}
		}
	}
	if lines == 0 {
		t.Error("/trace exported no traces")
	}
	if !sawDecide {
		t.Error("/trace has no decide span")
	}

	// pprof index answers.
	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Error("/debug/pprof/ index did not render")
	}
}
