package main

import (
	"fmt"
	"time"

	"repro/internal/space"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

// runClient is pubsub-sim's wire-client mode (-connect): it builds the
// same workload as the server, subscribes to the whole event space over
// the network, publishes the evaluation stream, and verifies the
// transport's zero-loss exactly-once contract — every published event
// must come back exactly once, across any forced reconnect. A violation
// is a non-zero exit, which is what the CI wire job asserts on.
func runClient(opt options) error {
	topo := topology.Eval600
	topo.Seed = opt.seed
	g, err := topology.Generate(topo)
	if err != nil {
		return err
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: opt.subs,
		BlockSplit:       []float64{0.4, 0.3, 0.3},
		NameMeans:        []float64{3, 10, 17},
		PubModes:         opt.modes,
		Seed:             opt.seed + 1,
	})
	if err != nil {
		return err
	}
	events := w.Events(opt.events, opt.seed+3)

	reg := telemetry.NewRegistry()
	c, err := transport.Dial(transport.ClientConfig{
		Addr:     opt.connect,
		Credits:  opt.credits,
		Registry: reg,
	})
	if err != nil {
		return fmt.Errorf("connect %s: %w", opt.connect, err)
	}
	defer c.Close()
	fmt.Printf("connected:  %s (session %d)\n", opt.connect, c.Session())

	// Subscribe to the entire space: every published event must be
	// delivered back exactly once.
	rect := make(space.Rect, len(w.Axes))
	for i := range rect {
		rect[i] = space.Interval{Lo: -1e18, Hi: 1e18}
	}
	owner := topology.NodeID(opt.clientNode)
	slot, err := c.Subscribe(owner, rect)
	if err != nil {
		return fmt.Errorf("subscribe: %w", err)
	}

	start := time.Now()
	type recvResult struct {
		got  int
		dups int
		err  error
	}
	done := make(chan recvResult, 1)
	go func() {
		var res recvResult
		seen := make(map[int64]bool, len(events))
		for res.got < len(events) {
			d, ok := c.Recv()
			if !ok {
				res.err = fmt.Errorf("connection closed after %d/%d deliveries: %v",
					res.got, len(events), c.Err())
				break
			}
			if !d.Interested {
				continue
			}
			if seen[d.Seq] {
				res.dups++
				continue
			}
			seen[d.Seq] = true
			res.got++
		}
		done <- res
	}()

	// Pipeline publishes a window at a time; at -bounce-at, force-close
	// the TCP connection mid-stream to exercise reconnect + resume.
	const window = 32
	sem := make(chan struct{}, window)
	pubErr := make(chan error, 1)
	for i := range events {
		if int64(i) == opt.bounceAt {
			fmt.Printf("bounce:     forcing reconnect before event %d\n", i)
			c.Bounce()
		}
		sem <- struct{}{}
		go func(ev workload.Event, i int) {
			defer func() { <-sem }()
			if err := c.Publish(ev); err != nil {
				select {
				case pubErr <- fmt.Errorf("publish %d: %w", i, err):
				default:
				}
			}
		}(events[i], i)
	}
	for i := 0; i < window; i++ {
		sem <- struct{}{}
	}
	select {
	case err := <-pubErr:
		return err
	default:
	}

	var res recvResult
	select {
	case res = <-done:
	case <-time.After(opt.recvTimeout):
		return fmt.Errorf("timeout: not all deliveries arrived within %v", opt.recvTimeout)
	}
	elapsed := time.Since(start)
	if res.err != nil {
		return res.err
	}

	resumes := reg.Scope("wire_client").Counter("session_resumes").Value()
	fmt.Printf("published:  %d events in %v (%.0f ev/s, window %d)\n",
		len(events), elapsed.Round(time.Millisecond), float64(len(events))/elapsed.Seconds(), window)
	fmt.Printf("delivered:  %d/%d exactly once (%d duplicate frames suppressed, %d session resumes)\n",
		res.got, len(events), res.dups, resumes)
	if res.got != len(events) {
		return fmt.Errorf("LOSS: %d of %d events not delivered", len(events)-res.got, len(events))
	}
	if opt.bounceAt >= 0 && resumes < 1 {
		return fmt.Errorf("bounce at %d did not force a session resume", opt.bounceAt)
	}
	if err := c.Unsubscribe(slot); err != nil {
		return fmt.Errorf("unsubscribe: %w", err)
	}
	fmt.Println("zero-loss:  exactly-once contract held")
	return nil
}
