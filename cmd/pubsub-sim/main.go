// Command pubsub-sim runs one end-to-end simulation: generate a network and
// a stock workload, precompute multicast groups with a chosen algorithm,
// replay an event stream through the Engine, and report per-method costs
// and the improvement over unicast.
//
// Usage:
//
//	pubsub-sim [flags]
//
// Flags:
//
//	-alg NAME     clustering algorithm: kmeans, forgy, mst, pairs,
//	              approx-pairs, noloss (default forgy)
//	-groups K     number of multicast groups (default 100)
//	-subs N       subscriptions (default 1000)
//	-modes N      publication mixture modes (default 1)
//	-events N     replayed events (default 500)
//	-budget N     cell budget for grid algorithms (default 6000)
//	-threshold F  Fig 5 threshold (default 0 = always multicast)
//	-dynamic      enable per-event unicast/multicast/broadcast selection
//	-subs-trace F load subscriptions from a trace file instead of generating
//	-seed N       random seed (default 1)
//
// Fault-profile flags (any of them adds a live broker replay under the
// injected faults, reporting retry/dedup/degradation statistics and the
// fault-adjusted costs):
//
//	-drop P        per-attempt end-to-end drop probability
//	-link-drop P   per-edge drop probability along delivery paths
//	-dup P         duplicate-delivery probability
//	-crash-node N  subscriber node to crash mid-run
//	-crash-at I    event index the crash starts at (default events/4)
//	-crash-until I event index the node recovers at (0 = never)
//	-retries N     broker retry bound per delivery (default 4)
//	-fault-seed N  injector seed (default seed+200)
//
// Overload-protection flags (any of them also enables the broker replay
// and attaches the health subsystem — admission control, per-destination
// circuit breakers and the self-healing control loop; see the Failure
// handling lifecycle section of DESIGN.md):
//
//	-max-inflight N  bound on events admitted but not yet fanned out
//	                 (0 = unlimited)
//	-shed-policy P   overload policy: block (lossless backpressure),
//	                 reject (fail fast with ErrOverloaded) or shed
//	                 (drop decided events below the mean fanout)
//	-auto-refresh    let the control loop re-cluster automatically when
//	                 failures quarantine groups
//
// Churn flags (a positive -churn-rate also enables the broker replay and
// interleaves live Subscribe/Unsubscribe operations with the event stream;
// every operation publishes a fresh decision snapshot):
//
//	-churn-rate R       expected churn operations per published event,
//	                    scheduled as a Poisson process (0 = none)
//	-decide-workers N   concurrent decision workers reading the snapshot
//	                    (0 = GOMAXPROCS, 1 = serial in publish order)
//
// Durability flags (see the Durability & recovery section of DESIGN.md):
//
//	-data-dir DIR  persist broker state (write-ahead journal + checkpoints)
//	               in DIR and recover it on the next run; also enables the
//	               broker replay. SIGINT/SIGTERM close the broker cleanly,
//	               writing a final checkpoint before the process exits.
//
// Observability flags (see the Observability section of DESIGN.md):
//
//	-http ADDR     after the replay, serve /metrics (Prometheus),
//	               /metrics.json, /trace (JSONL) and /debug/pprof/ on ADDR
//	               until interrupted
//	-trace-rate F  fraction of published events traced end to end
//	               (deterministic sampling; default 1 = every event)
//	-trace-cap N   trace ring-buffer capacity (default 1024)
//
// Wire-client flags (-connect switches the whole run into client mode:
// instead of simulating locally, connect to a pubsub-server, subscribe to
// the full event space, publish the evaluation stream and verify the
// zero-loss exactly-once contract — any loss or duplicate is a non-zero
// exit):
//
//	-connect ADDR    pubsub-server address to dial
//	-client-node N   node id the client subscribes as (default 7)
//	-credits N       delivery credit window granted to the server
//	-bounce-at I     force a reconnect before event index I, proving
//	                 exactly-once across a session resume (-1 = never)
//	-recv-timeout D  delivery-completion timeout (default 60s)
//
// Trace files use the workload text format (see ReadSubscriptions); the
// network is still generated, so node ids in the trace must fit it.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/matching"
	"repro/internal/multicast"
	"repro/internal/noloss"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

type options struct {
	alg       string
	groups    int
	subs      int
	modes     int
	events    int
	budget    int
	threshold float64
	dynamic   bool
	subsTrace string
	seed      int64

	drop       float64
	linkDrop   float64
	dup        float64
	crashNode  int
	crashAt    int64
	crashUntil int64
	retries    int
	faultSeed  int64

	maxInflight int
	shedPolicy  string
	autoRefresh bool

	churnRate     float64
	decideWorkers int

	dataDir string

	httpAddr  string
	traceRate float64
	traceCap  int

	connect     string
	clientNode  int
	credits     int
	bounceAt    int64
	recvTimeout time.Duration
}

// validate rejects malformed fault and observability flags with a clear
// error before any expensive work runs.
func (o options) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"-drop", o.drop}, {"-link-drop", o.linkDrop}, {"-dup", o.dup}} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("%s = %v: probability must be in [0, 1]", f.name, f.v)
		}
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries = %d: must be ≥ 0", o.retries)
	}
	if o.churnRate < 0 {
		return fmt.Errorf("-churn-rate = %v: must be ≥ 0", o.churnRate)
	}
	if o.decideWorkers < 0 {
		return fmt.Errorf("-decide-workers = %d: must be ≥ 0 (0 = GOMAXPROCS)", o.decideWorkers)
	}
	if o.maxInflight < 0 {
		return fmt.Errorf("-max-inflight = %d: must be ≥ 0", o.maxInflight)
	}
	if o.shedPolicy != "" {
		if _, err := health.ParsePolicy(o.shedPolicy); err != nil {
			return fmt.Errorf("-shed-policy: %w", err)
		}
	}
	if o.traceRate < 0 || o.traceRate > 1 {
		return fmt.Errorf("-trace-rate = %v: must be in [0, 1]", o.traceRate)
	}
	if o.traceCap < 1 {
		return fmt.Errorf("-trace-cap = %d: must be ≥ 1", o.traceCap)
	}
	if o.connect != "" {
		if o.credits < 1 {
			return fmt.Errorf("-credits = %d: must be ≥ 1", o.credits)
		}
		if o.clientNode < 0 {
			return fmt.Errorf("-client-node = %d: must be ≥ 0", o.clientNode)
		}
		if o.recvTimeout <= 0 {
			return fmt.Errorf("-recv-timeout = %v: must be > 0", o.recvTimeout)
		}
	}
	return nil
}

// faultsRequested reports whether any fault-profile flag is active.
func (o options) faultsRequested() bool {
	return o.drop > 0 || o.linkDrop > 0 || o.dup > 0 || o.crashNode >= 0
}

// healthRequested reports whether any overload-protection flag is active;
// like the fault flags, any of them enables the broker replay.
func (o options) healthRequested() bool {
	return o.maxInflight > 0 || o.shedPolicy != "" || o.autoRefresh
}

// healthConfig translates the overload-protection flags into a health
// subsystem configuration, or nil when none are set.
func (o options) healthConfig() *health.Config {
	if !o.healthRequested() {
		return nil
	}
	cfg := health.Config{
		MaxInflight: o.maxInflight,
		AutoRefresh: o.autoRefresh,
		Seed:        o.seed,
	}
	if o.shedPolicy != "" {
		cfg.Policy, _ = health.ParsePolicy(o.shedPolicy) // validated already
	}
	return &cfg
}

func main() {
	var opt options
	flag.StringVar(&opt.alg, "alg", "forgy", "clustering algorithm")
	flag.IntVar(&opt.groups, "groups", 100, "multicast groups")
	flag.IntVar(&opt.subs, "subs", 1000, "subscriptions")
	flag.IntVar(&opt.modes, "modes", 1, "publication mixture modes")
	flag.IntVar(&opt.events, "events", 500, "replayed events")
	flag.IntVar(&opt.budget, "budget", 6000, "cell budget for grid algorithms")
	flag.Float64Var(&opt.threshold, "threshold", 0, "Fig 5 multicast threshold")
	flag.BoolVar(&opt.dynamic, "dynamic", false, "per-event unicast/multicast/broadcast selection")
	flag.StringVar(&opt.subsTrace, "subs-trace", "", "load subscriptions from a trace file")
	flag.Int64Var(&opt.seed, "seed", 1, "random seed")
	flag.Float64Var(&opt.drop, "drop", 0, "per-attempt end-to-end drop probability")
	flag.Float64Var(&opt.linkDrop, "link-drop", 0, "per-edge drop probability along delivery paths")
	flag.Float64Var(&opt.dup, "dup", 0, "duplicate-delivery probability")
	flag.IntVar(&opt.crashNode, "crash-node", -1, "subscriber node to crash mid-run (-1 = none)")
	flag.Int64Var(&opt.crashAt, "crash-at", -1, "event index the crash starts at (default events/4)")
	flag.Int64Var(&opt.crashUntil, "crash-until", 0, "event index the node recovers at (0 = never)")
	flag.IntVar(&opt.retries, "retries", 4, "broker retry bound per delivery")
	flag.Int64Var(&opt.faultSeed, "fault-seed", 0, "fault injector seed (default seed+200)")
	flag.IntVar(&opt.maxInflight, "max-inflight", 0, "admission bound on in-pipeline events (0 = unlimited)")
	flag.StringVar(&opt.shedPolicy, "shed-policy", "", "overload policy: block, reject or shed")
	flag.BoolVar(&opt.autoRefresh, "auto-refresh", false, "re-cluster automatically when failures quarantine groups")
	flag.Float64Var(&opt.churnRate, "churn-rate", 0, "live Subscribe/Unsubscribe ops per event during the broker replay (0 = none)")
	flag.IntVar(&opt.decideWorkers, "decide-workers", 0, "broker decision workers (0 = GOMAXPROCS, 1 = serial ordered)")
	flag.StringVar(&opt.dataDir, "data-dir", "", "durable broker state directory: journal + checkpoints, recovered on restart")
	flag.StringVar(&opt.httpAddr, "http", "", "serve /metrics, /trace and /debug/pprof/ on this address after the replay")
	flag.Float64Var(&opt.traceRate, "trace-rate", 1, "fraction of published events traced (deterministic sampling)")
	flag.IntVar(&opt.traceCap, "trace-cap", 1024, "trace ring-buffer capacity")
	flag.StringVar(&opt.connect, "connect", "", "run as a wire client against a pubsub-server at this address")
	flag.IntVar(&opt.clientNode, "client-node", 7, "node id the wire client subscribes as")
	flag.IntVar(&opt.credits, "credits", 256, "delivery credit window granted to the server (wire client)")
	flag.Int64Var(&opt.bounceAt, "bounce-at", -1, "force a reconnect before this event index (-1 = never)")
	flag.DurationVar(&opt.recvTimeout, "recv-timeout", 60*time.Second, "wire client delivery-completion timeout")
	flag.Parse()

	if err := opt.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "pubsub-sim: %v\n", err)
		os.Exit(2)
	}
	entry := run
	if opt.connect != "" {
		entry = runClient
	}
	if err := entry(opt); err != nil {
		fmt.Fprintf(os.Stderr, "pubsub-sim: %v\n", err)
		os.Exit(1)
	}
}

// testHookServe, when non-nil, is invoked with the telemetry server's
// address after the replay instead of blocking forever; the integration
// test uses it to probe the endpoints deterministically.
var testHookServe func(addr string)

func run(opt options) error {
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	if opt.httpAddr != "" {
		reg = telemetry.NewRegistry()
		var err error
		tracer, err = telemetry.NewTracer(telemetry.TracerConfig{
			Capacity:   opt.traceCap,
			SampleRate: opt.traceRate,
			Seed:       opt.seed,
		})
		if err != nil {
			return err
		}
	}

	topo := topology.Eval600
	topo.Seed = opt.seed
	g, err := topology.Generate(topo)
	if err != nil {
		return err
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: opt.subs,
		BlockSplit:       []float64{0.4, 0.3, 0.3},
		NameMeans:        []float64{3, 10, 17},
		PubModes:         opt.modes,
		Seed:             opt.seed + 1,
	})
	if err != nil {
		return err
	}
	if opt.subsTrace != "" {
		f, err := os.Open(opt.subsTrace)
		if err != nil {
			return err
		}
		loaded, err := workload.ReadSubscriptions(f)
		f.Close()
		if err != nil {
			return err
		}
		w, err = workload.NewCustomWorld(g, w.Axes, loaded)
		if err != nil {
			return fmt.Errorf("trace workload: %w", err)
		}
	}
	train := w.Events(2000, opt.seed+2)
	eval := w.Events(opt.events, opt.seed+3)

	cfg := core.Config{Groups: opt.groups, CellBudget: opt.budget, Threshold: opt.threshold, DynamicMethod: opt.dynamic}
	switch opt.alg {
	case "kmeans":
		cfg.Algorithm = &cluster.KMeans{Variant: cluster.MacQueen}
	case "forgy":
		cfg.Algorithm = &cluster.KMeans{Variant: cluster.Forgy}
	case "mst":
		cfg.Algorithm = &cluster.MST{}
	case "pairs":
		cfg.Algorithm = &cluster.Pairwise{}
	case "approx-pairs":
		cfg.Algorithm = &cluster.Pairwise{Approx: true}
	case "noloss":
		cfg.NoLoss = &noloss.Config{PoolSize: 5000, Iterations: 8}
	default:
		return fmt.Errorf("unknown algorithm %q", opt.alg)
	}

	start := time.Now()
	engine, err := core.NewFromWorld(w, train, cfg)
	if err != nil {
		return err
	}
	buildTime := time.Since(start)
	engine.Instrument(reg) // no-op with a nil registry

	matcher, err := matching.NewRTree(w)
	if err != nil {
		return err
	}
	base, err := sim.MeasureBaselines(engine.Model(), w, matcher, eval)
	if err != nil {
		return err
	}

	var totals core.Costs
	methodCount := map[multicast.Method]int{}
	for _, ev := range eval {
		d, c, err := engine.Publish(ev)
		if err != nil {
			return err
		}
		totals.Network += c.Network
		totals.AppLevel += c.AppLevel
		methodCount[d.Method]++
	}
	n := float64(len(eval))
	netAvg := totals.Network / n
	almAvg := totals.AppLevel / n

	fmt.Printf("network:    %d nodes, %d edges (seed %d)\n", g.NumNodes(), g.NumEdges(), opt.seed)
	fmt.Printf("workload:   %d subscriptions on %d subscriber nodes, %d-mode publications\n",
		len(w.Subs), w.NumSubscribers(), opt.modes)
	fmt.Printf("strategy:   %s, K=%d groups (%d non-empty), built in %v\n",
		opt.alg, opt.groups, engine.NumGroups(), buildTime.Round(time.Millisecond))
	fmt.Printf("decisions:  %d multicast, %d unicast, %d broadcast of %d events\n",
		methodCount[multicast.NetworkMulticast], methodCount[multicast.Unicast],
		methodCount[multicast.Broadcast], len(eval))
	fmt.Printf("baselines:  unicast %.0f   broadcast %.0f   ideal %.0f (per event)\n",
		base.Unicast, base.Broadcast, base.Ideal)
	fmt.Printf("cost:       network multicast %.0f (%.1f%% improvement)\n",
		netAvg, sim.Improvement(base, netAvg))
	fmt.Printf("            app-level multicast %.0f (%.1f%% improvement)\n",
		almAvg, sim.Improvement(base, almAvg))

	if opt.faultsRequested() || opt.healthRequested() || opt.churnRate > 0 || opt.dataDir != "" {
		if err := runFaulty(opt, engine, eval, totals, n, reg, tracer); err != nil {
			return err
		}
	}
	return serveTelemetry(opt, reg, tracer)
}

// serveTelemetry exposes the run's registry and tracer over HTTP when
// -http is set. Outside tests it blocks until the process is interrupted.
func serveTelemetry(opt options, reg *telemetry.Registry, tracer *telemetry.Tracer) error {
	if opt.httpAddr == "" {
		return nil
	}
	srv, err := telemetry.Serve(opt.httpAddr, reg, tracer)
	if err != nil {
		return err
	}
	fmt.Printf("telemetry:  serving /metrics, /metrics.json, /trace, /debug/pprof/ on http://%s (interrupt to exit)\n", srv.Addr())
	if testHookServe != nil {
		testHookServe(srv.Addr())
		return srv.Close()
	}
	select {}
}

// closeOnSignal installs a SIGINT/SIGTERM handler that closes the broker
// before the process exits — for a durable broker Close writes a final
// checkpoint, so an interrupted run restarts from a clean snapshot instead
// of dying mid-write and replaying the journal. The returned function
// disarms the handler and performs the same close-exactly-once for the
// normal shutdown path; both paths share one sync.Once.
func closeOnSignal(b *broker.Broker) func() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	var once sync.Once
	closeBroker := func() { once.Do(func() { b.Close() }) }
	go func() {
		if _, ok := <-sigs; !ok {
			return
		}
		fmt.Fprintln(os.Stderr, "pubsub-sim: interrupted; closing broker")
		closeBroker()
		os.Exit(1)
	}()
	return func() {
		signal.Stop(sigs)
		close(sigs)
		closeBroker()
	}
}

// runFaulty replays the evaluation stream through a live broker under the
// requested fault profile and reports the reliability statistics plus the
// cost model's fault-adjusted prices.
func runFaulty(opt options, engine *core.Engine, eval []workload.Event, totals core.Costs, n float64, reg *telemetry.Registry, tracer *telemetry.Tracer) error {
	fcfg := faults.Config{
		Seed:         opt.faultSeed,
		DropProb:     opt.drop,
		DupProb:      opt.dup,
		LinkDropProb: opt.linkDrop,
	}
	if fcfg.Seed == 0 {
		fcfg.Seed = opt.seed + 200
	}
	if opt.crashNode >= 0 {
		at := opt.crashAt
		if at < 0 {
			at = int64(opt.events) / 4
		}
		fcfg.Crashes = []faults.Crash{{
			Node:   topology.NodeID(opt.crashNode),
			DownAt: at,
			UpAt:   opt.crashUntil,
		}}
	}
	inj, err := faults.New(fcfg)
	if err != nil {
		return err
	}
	opts := []broker.Option{
		broker.WithFaults(inj),
		broker.WithReliability(broker.ReliabilityConfig{MaxRetries: opt.retries}),
		broker.WithTelemetry(reg), // nil keeps the broker's private registry
		broker.WithTracer(tracer),
		broker.WithDecideWorkers(opt.decideWorkers),
	}
	if hc := opt.healthConfig(); hc != nil {
		h, err := health.New(*hc)
		if err != nil {
			return err
		}
		opts = append(opts, broker.WithHealth(h))
	}
	var b *broker.Broker
	if opt.dataDir != "" {
		b, err = broker.Open(opt.dataDir, engine, opts...)
	} else {
		b, err = broker.New(engine, opts...)
	}
	if err != nil {
		return err
	}
	// closeBroker is shared between the normal path and the signal handler:
	// whichever runs first performs the real Close (for a durable broker
	// that writes a final checkpoint), the other is a no-op.
	closeBroker := closeOnSignal(b)
	if opt.dataDir != "" {
		rec := b.Recovery()
		fmt.Printf("durable:    %s: checkpoint %v, %d journal(s), %d records replayed, %d publishes redelivered in %v\n",
			opt.dataDir, rec.CheckpointLoaded, rec.JournalsReplayed, rec.RecordsReplayed,
			rec.Outstanding, rec.Duration.Round(time.Microsecond))
		if rec.TornTruncations > 0 {
			fmt.Printf("            %d torn journal tail(s) truncated (%d bytes)\n",
				rec.TornTruncations, rec.TornTailBytes)
		}
	}
	var churn []sim.ChurnOp
	if opt.churnRate > 0 {
		churn, err = sim.GenerateChurn(engine.World(), sim.ChurnConfig{
			Rate: opt.churnRate, Events: len(eval), Seed: opt.seed + 400,
		})
		if err != nil {
			closeBroker()
			return err
		}
	}
	var slots []int // live churned subscriptions, insertion order
	next := 0
	for i, ev := range eval {
		for next < len(churn) && churn[next].BeforeEvent <= i {
			op := churn[next]
			if op.Subscribe {
				slot, err := b.Subscribe(op.Sub)
				if err != nil {
					closeBroker()
					return err
				}
				slots = append(slots, slot)
			} else {
				slot := slots[op.Target]
				slots = append(slots[:op.Target], slots[op.Target+1:]...)
				if err := b.Unsubscribe(slot); err != nil {
					closeBroker()
					return err
				}
			}
			next++
		}
		switch err := b.Publish(ev); {
		case err == nil:
		case errors.Is(err, health.ErrOverloaded):
			// Counted in Stats.Rejected; overload is part of the report,
			// not a failure of the replay.
		default:
			closeBroker()
			return err
		}
	}
	closeBroker()
	st := b.Stats()

	fmt.Printf("faults:     drop %.0f%%  link-drop %.0f%%  dup %.0f%%", opt.drop*100, opt.linkDrop*100, opt.dup*100)
	if opt.crashNode >= 0 {
		fmt.Printf("  crash node %d @ event %d", opt.crashNode, fcfg.Crashes[0].DownAt)
	}
	fmt.Printf(" (injector seed %d)\n", fcfg.Seed)
	if opt.crashNode >= 0 {
		if _, ok := engine.World().SubscriberIndex(topology.NodeID(opt.crashNode)); !ok {
			fmt.Printf("note:       node %d holds no subscriptions; the crash cannot affect deliveries\n", opt.crashNode)
		}
	}
	if opt.churnRate > 0 {
		fmt.Printf("churn:      rate %.2f ops/event: %d subscribes, %d unsubscribes, %d snapshot swaps (%d decision workers)\n",
			opt.churnRate, st.Subscribes, st.Unsubscribes, st.SnapshotSwaps, b.DecideWorkers())
	}
	fmt.Printf("broker:     %d deliveries, %d retries, %d redelivered, %d deduped\n",
		st.Deliveries, st.Retries, st.Redelivered, st.Deduped)
	fmt.Printf("            %d degraded, %d quarantined groups, %d offline skips, %d lost\n",
		st.Degraded, st.Quarantined, st.Offline, st.Lost)
	if opt.healthRequested() {
		fmt.Printf("health:     %d rejected, %d shed, %d rate-limited (policy %s, max-inflight %d)\n",
			st.Rejected, st.Shed, st.RateLimited, opt.healthConfig().Policy, opt.maxInflight)
		fmt.Printf("            %d breaker opens, %d skips, %d probes, %d auto-refreshes\n",
			st.BreakerOpens, st.BreakerSkipped, st.Probes, st.AutoRefreshes)
	}
	adj := sim.FaultAdjust(sim.Costs{Network: totals.Network / n, AppLevel: totals.AppLevel / n}, opt.drop, opt.retries)
	fmt.Printf("adjusted:   network multicast %.0f   app-level %.0f (× %.2f retry overhead)\n",
		adj.Network, adj.AppLevel, sim.ExpectedTransmissions(opt.drop, opt.retries))
	return nil
}
