// Command pubsub-sim runs one end-to-end simulation: generate a network and
// a stock workload, precompute multicast groups with a chosen algorithm,
// replay an event stream through the Engine, and report per-method costs
// and the improvement over unicast.
//
// Usage:
//
//	pubsub-sim [flags]
//
// Flags:
//
//	-alg NAME     clustering algorithm: kmeans, forgy, mst, pairs,
//	              approx-pairs, noloss (default forgy)
//	-groups K     number of multicast groups (default 100)
//	-subs N       subscriptions (default 1000)
//	-modes N      publication mixture modes (default 1)
//	-events N     replayed events (default 500)
//	-budget N     cell budget for grid algorithms (default 6000)
//	-threshold F  Fig 5 threshold (default 0 = always multicast)
//	-dynamic      enable per-event unicast/multicast/broadcast selection
//	-subs-trace F load subscriptions from a trace file instead of generating
//	-seed N       random seed (default 1)
//
// Trace files use the workload text format (see ReadSubscriptions); the
// network is still generated, so node ids in the trace must fit it.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/matching"
	"repro/internal/multicast"
	"repro/internal/noloss"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	alg := flag.String("alg", "forgy", "clustering algorithm")
	groups := flag.Int("groups", 100, "multicast groups")
	subs := flag.Int("subs", 1000, "subscriptions")
	modes := flag.Int("modes", 1, "publication mixture modes")
	events := flag.Int("events", 500, "replayed events")
	budget := flag.Int("budget", 6000, "cell budget for grid algorithms")
	threshold := flag.Float64("threshold", 0, "Fig 5 multicast threshold")
	dynamic := flag.Bool("dynamic", false, "per-event unicast/multicast/broadcast selection")
	subsTrace := flag.String("subs-trace", "", "load subscriptions from a trace file")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if err := run(*alg, *groups, *subs, *modes, *events, *budget, *threshold, *seed, *dynamic, *subsTrace); err != nil {
		fmt.Fprintf(os.Stderr, "pubsub-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(algName string, groups, subs, modes, events, budget int, threshold float64, seed int64, dynamic bool, subsTrace string) error {
	topo := topology.Eval600
	topo.Seed = seed
	g, err := topology.Generate(topo)
	if err != nil {
		return err
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: subs,
		BlockSplit:       []float64{0.4, 0.3, 0.3},
		NameMeans:        []float64{3, 10, 17},
		PubModes:         modes,
		Seed:             seed + 1,
	})
	if err != nil {
		return err
	}
	if subsTrace != "" {
		f, err := os.Open(subsTrace)
		if err != nil {
			return err
		}
		loaded, err := workload.ReadSubscriptions(f)
		f.Close()
		if err != nil {
			return err
		}
		w, err = workload.NewCustomWorld(g, w.Axes, loaded)
		if err != nil {
			return fmt.Errorf("trace workload: %w", err)
		}
	}
	train := w.Events(2000, seed+2)
	eval := w.Events(events, seed+3)

	cfg := core.Config{Groups: groups, CellBudget: budget, Threshold: threshold, DynamicMethod: dynamic}
	switch algName {
	case "kmeans":
		cfg.Algorithm = &cluster.KMeans{Variant: cluster.MacQueen}
	case "forgy":
		cfg.Algorithm = &cluster.KMeans{Variant: cluster.Forgy}
	case "mst":
		cfg.Algorithm = cluster.MST{}
	case "pairs":
		cfg.Algorithm = &cluster.Pairwise{}
	case "approx-pairs":
		cfg.Algorithm = &cluster.Pairwise{Approx: true}
	case "noloss":
		cfg.NoLoss = &noloss.Config{PoolSize: 5000, Iterations: 8}
	default:
		return fmt.Errorf("unknown algorithm %q", algName)
	}

	start := time.Now()
	engine, err := core.NewFromWorld(w, train, cfg)
	if err != nil {
		return err
	}
	buildTime := time.Since(start)

	matcher, err := matching.NewRTree(w)
	if err != nil {
		return err
	}
	base, err := sim.MeasureBaselines(engine.Model(), w, matcher, eval)
	if err != nil {
		return err
	}

	var totals core.Costs
	methodCount := map[multicast.Method]int{}
	for _, ev := range eval {
		d, c, err := engine.Publish(ev)
		if err != nil {
			return err
		}
		totals.Network += c.Network
		totals.AppLevel += c.AppLevel
		methodCount[d.Method]++
	}
	n := float64(len(eval))
	netAvg := totals.Network / n
	almAvg := totals.AppLevel / n

	fmt.Printf("network:    %d nodes, %d edges (seed %d)\n", g.NumNodes(), g.NumEdges(), seed)
	fmt.Printf("workload:   %d subscriptions on %d subscriber nodes, %d-mode publications\n",
		len(w.Subs), w.NumSubscribers(), modes)
	fmt.Printf("strategy:   %s, K=%d groups (%d non-empty), built in %v\n",
		algName, groups, engine.NumGroups(), buildTime.Round(time.Millisecond))
	fmt.Printf("decisions:  %d multicast, %d unicast, %d broadcast of %d events\n",
		methodCount[multicast.NetworkMulticast], methodCount[multicast.Unicast],
		methodCount[multicast.Broadcast], len(eval))
	fmt.Printf("baselines:  unicast %.0f   broadcast %.0f   ideal %.0f (per event)\n",
		base.Unicast, base.Broadcast, base.Ideal)
	fmt.Printf("cost:       network multicast %.0f (%.1f%% improvement)\n",
		netAvg, sim.Improvement(base, netAvg))
	fmt.Printf("            app-level multicast %.0f (%.1f%% improvement)\n",
		almAvg, sim.Improvement(base, almAvg))
	return nil
}
