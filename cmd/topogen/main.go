// Command topogen generates a transit–stub network topology and prints it
// in a simple edge-list format (or summarises it), mirroring how the paper
// used the GT-ITM package.
//
// Usage:
//
//	topogen [flags]
//
// Flags:
//
//	-blocks N     transit blocks (default 3)
//	-transit N    transit nodes per block (default 5)
//	-stubs N      stubs per transit node (default 2)
//	-nodes N      nodes per stub (default 20)
//	-seed N       random seed (default 1)
//	-summary      print structure statistics instead of edges
//	-dot          emit Graphviz DOT for visualisation
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/topology"
)

func main() {
	blocks := flag.Int("blocks", 3, "transit blocks")
	transit := flag.Int("transit", 5, "transit nodes per block")
	stubs := flag.Int("stubs", 2, "stubs per transit node")
	nodes := flag.Int("nodes", 20, "nodes per stub")
	seed := flag.Int64("seed", 1, "random seed")
	summary := flag.Bool("summary", false, "print statistics instead of edges")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of the edge list")
	flag.Parse()

	g, err := topology.Generate(topology.Config{
		TransitBlocks:   *blocks,
		TransitPerBlock: *transit,
		StubsPerTransit: *stubs,
		NodesPerStub:    *nodes,
		Seed:            *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *dot {
		if err := topology.WriteDOT(w, g); err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *summary {
		transitCount := 0
		for i := 0; i < g.NumNodes(); i++ {
			if g.Node(topology.NodeID(i)).Kind == topology.Transit {
				transitCount++
			}
		}
		fmt.Fprintf(w, "nodes:        %d\n", g.NumNodes())
		fmt.Fprintf(w, "edges:        %d\n", g.NumEdges())
		fmt.Fprintf(w, "transit:      %d\n", transitCount)
		fmt.Fprintf(w, "stubs:        %d\n", g.NumStubs())
		fmt.Fprintf(w, "blocks:       %d\n", g.NumBlocks())
		fmt.Fprintf(w, "total cost:   %.1f\n", g.TotalEdgeCost())
		fmt.Fprintf(w, "connected:    %v\n", g.Connected())
		return
	}

	// Round-trippable dump (see topology.ReadText).
	if err := topology.WriteText(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
}
