package main

import (
	"strings"
	"testing"
	"time"
)

func baseOptions() options {
	return options{
		workers:      4,
		drainTimeout: 30 * time.Second,
	}
}

func TestValidateShardFlags(t *testing.T) {
	cases := []struct {
		name    string
		mut     func(*options)
		wantErr string
	}{
		{"defaults ok", func(o *options) {}, ""},
		{"shards 4 ok", func(o *options) { o.shards, o.shardsSet = 4, true }, ""},
		{"shards 1 ok", func(o *options) { o.shards, o.shardsSet = 1, true }, ""},
		{"shards 0 rejected", func(o *options) { o.shards, o.shardsSet = 0, true }, "power of two"},
		{"shards negative rejected", func(o *options) { o.shards, o.shardsSet = -2, true }, "power of two"},
		{"shards 3 rejected", func(o *options) { o.shards, o.shardsSet = 3, true }, "power of two"},
		{"shards 6 rejected", func(o *options) { o.shards, o.shardsSet = 6, true }, "power of two"},
		{"shards with data-dir rejected", func(o *options) {
			o.shards, o.shardsSet = 4, true
			o.dataDir = "/tmp/x"
		}, "incompatible"},
		{"shards with replica-of rejected", func(o *options) {
			o.shards, o.shardsSet = 4, true
			o.dataDir, o.replicaOf = "/tmp/x", "127.0.0.1:1"
		}, "incompatible"},
		{"shards with shard-of rejected", func(o *options) {
			o.shards, o.shardsSet = 4, true
			o.shardOf = "0/4"
		}, "mutually exclusive"},
		{"shard-of ok", func(o *options) { o.shardOf = "2/4" }, ""},
		{"shard-of with replicated pair ok", func(o *options) {
			o.shardOf = "0/2"
			o.dataDir, o.replicaOf = "/tmp/x", "127.0.0.1:1"
		}, ""},
		{"shard-of malformed", func(o *options) { o.shardOf = "zero/4" }, "INDEX/COUNT"},
		{"shard-of no slash", func(o *options) { o.shardOf = "3" }, "INDEX/COUNT"},
		{"shard-of count not power of two", func(o *options) { o.shardOf = "1/3" }, "power of two"},
		{"shard-of count zero", func(o *options) { o.shardOf = "0/0" }, "power of two"},
		{"shard-of index out of range", func(o *options) { o.shardOf = "4/4" }, "out of range"},
		{"shard-of negative index", func(o *options) { o.shardOf = "-1/4" }, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := baseOptions()
			tc.mut(&o)
			err := o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() accepted a contradictory combination, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %q, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseShardOf(t *testing.T) {
	idx, n, err := parseShardOf("3/8")
	if err != nil || idx != 3 || n != 8 {
		t.Fatalf("parseShardOf(3/8) = (%d, %d, %v), want (3, 8, nil)", idx, n, err)
	}
}
