// Command pubsub-server runs the broker as a TCP daemon speaking the wire
// protocol (see the Wire transport section of DESIGN.md). It builds the
// same world and clustering engine as pubsub-sim, then serves clients —
// subscriptions, publications and deliveries — over the network, with
// credit-based flow control and resumable sessions.
//
// Usage:
//
//	pubsub-server [flags]
//
// Flags:
//
//	-listen ADDR     TCP listen address (default 127.0.0.1:7070; use :0
//	                 for an ephemeral port, printed on startup)
//	-alg NAME        clustering algorithm: kmeans, forgy, mst, pairs,
//	                 approx-pairs (default forgy)
//	-groups K        number of multicast groups (default 100)
//	-subs N          pre-seeded subscriptions (default 1000)
//	-modes N         publication mixture modes (default 1)
//	-budget N        cell budget for grid algorithms (default 6000)
//	-threshold F     Fig 5 threshold (default 0 = always multicast)
//	-dynamic         per-event unicast/multicast/broadcast selection
//	-seed N          random seed (default 1)
//	-workers N       broker delivery workers (default 4)
//	-decide-workers N broker decision workers (0 = GOMAXPROCS)
//	-max-inflight N  admission bound on in-pipeline events (0 = unlimited)
//	-shed-policy P   overload policy: block, reject or shed
//	-data-dir DIR    durable broker state (journal + checkpoints),
//	                 recovered on restart
//	-session-timeout D  how long a disconnected session may resume
//	                 (default 10s)
//	-drain-timeout D maximum graceful-drain time on SIGINT/SIGTERM
//	                 (default 30s)
//	-http ADDR       serve /metrics, /metrics.json and /debug/pprof/
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting
// connections, lets the broker flush every in-flight delivery to the
// connected clients, closes the journal (writing a final checkpoint when
// -data-dir is set), says goodbye to each session and exits 0. A second
// signal — or the drain timeout — forces an immediate stop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/noloss"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

type options struct {
	listen    string
	alg       string
	groups    int
	subs      int
	modes     int
	budget    int
	threshold float64
	dynamic   bool
	seed      int64

	workers       int
	decideWorkers int
	maxInflight   int
	shedPolicy    string
	dataDir       string

	sessionTimeout time.Duration
	drainTimeout   time.Duration
	httpAddr       string
}

func (o options) validate() error {
	if o.workers < 1 {
		return fmt.Errorf("-workers = %d: must be ≥ 1", o.workers)
	}
	if o.decideWorkers < 0 {
		return fmt.Errorf("-decide-workers = %d: must be ≥ 0 (0 = GOMAXPROCS)", o.decideWorkers)
	}
	if o.maxInflight < 0 {
		return fmt.Errorf("-max-inflight = %d: must be ≥ 0", o.maxInflight)
	}
	if o.shedPolicy != "" {
		if _, err := health.ParsePolicy(o.shedPolicy); err != nil {
			return fmt.Errorf("-shed-policy: %w", err)
		}
	}
	if o.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout = %v: must be > 0", o.drainTimeout)
	}
	return nil
}

func main() {
	var opt options
	flag.StringVar(&opt.listen, "listen", "127.0.0.1:7070", "TCP listen address")
	flag.StringVar(&opt.alg, "alg", "forgy", "clustering algorithm")
	flag.IntVar(&opt.groups, "groups", 100, "multicast groups")
	flag.IntVar(&opt.subs, "subs", 1000, "pre-seeded subscriptions")
	flag.IntVar(&opt.modes, "modes", 1, "publication mixture modes")
	flag.IntVar(&opt.budget, "budget", 6000, "cell budget for grid algorithms")
	flag.Float64Var(&opt.threshold, "threshold", 0, "Fig 5 multicast threshold")
	flag.BoolVar(&opt.dynamic, "dynamic", false, "per-event unicast/multicast/broadcast selection")
	flag.Int64Var(&opt.seed, "seed", 1, "random seed")
	flag.IntVar(&opt.workers, "workers", 4, "broker delivery workers")
	flag.IntVar(&opt.decideWorkers, "decide-workers", 0, "broker decision workers (0 = GOMAXPROCS)")
	flag.IntVar(&opt.maxInflight, "max-inflight", 0, "admission bound on in-pipeline events (0 = unlimited)")
	flag.StringVar(&opt.shedPolicy, "shed-policy", "", "overload policy: block, reject or shed")
	flag.StringVar(&opt.dataDir, "data-dir", "", "durable broker state directory")
	flag.DurationVar(&opt.sessionTimeout, "session-timeout", 10*time.Second, "disconnected-session resume window")
	flag.DurationVar(&opt.drainTimeout, "drain-timeout", 30*time.Second, "maximum graceful-drain time on shutdown")
	flag.StringVar(&opt.httpAddr, "http", "", "serve /metrics and /debug/pprof/ on this address")
	flag.Parse()

	if err := opt.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "pubsub-server: %v\n", err)
		os.Exit(2)
	}
	if err := run(opt); err != nil {
		fmt.Fprintf(os.Stderr, "pubsub-server: %v\n", err)
		os.Exit(1)
	}
}

func run(opt options) error {
	reg := telemetry.NewRegistry()

	topo := topology.Eval600
	topo.Seed = opt.seed
	g, err := topology.Generate(topo)
	if err != nil {
		return err
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: opt.subs,
		BlockSplit:       []float64{0.4, 0.3, 0.3},
		NameMeans:        []float64{3, 10, 17},
		PubModes:         opt.modes,
		Seed:             opt.seed + 1,
	})
	if err != nil {
		return err
	}
	cfg := core.Config{Groups: opt.groups, CellBudget: opt.budget, Threshold: opt.threshold, DynamicMethod: opt.dynamic}
	switch opt.alg {
	case "kmeans":
		cfg.Algorithm = &cluster.KMeans{Variant: cluster.MacQueen}
	case "forgy":
		cfg.Algorithm = &cluster.KMeans{Variant: cluster.Forgy}
	case "mst":
		cfg.Algorithm = &cluster.MST{}
	case "pairs":
		cfg.Algorithm = &cluster.Pairwise{}
	case "approx-pairs":
		cfg.Algorithm = &cluster.Pairwise{Approx: true}
	case "noloss":
		cfg.NoLoss = &noloss.Config{PoolSize: 5000, Iterations: 8}
	default:
		return fmt.Errorf("unknown algorithm %q", opt.alg)
	}

	start := time.Now()
	engine, err := core.NewFromWorld(w, w.Events(2000, opt.seed+2), cfg)
	if err != nil {
		return err
	}
	engine.Instrument(reg)
	fmt.Printf("engine:     %s, K=%d groups (%d non-empty), built in %v\n",
		opt.alg, opt.groups, engine.NumGroups(), time.Since(start).Round(time.Millisecond))

	srv := transport.NewServer(transport.Config{
		Registry:       reg,
		SessionTimeout: opt.sessionTimeout,
	})
	opts := []broker.Option{
		broker.WithWorkers(opt.workers),
		broker.WithDecideWorkers(opt.decideWorkers),
		broker.WithTelemetry(reg),
		broker.WithObserver(srv.Dispatch),
	}
	if opt.maxInflight > 0 || opt.shedPolicy != "" {
		hc := health.Config{MaxInflight: opt.maxInflight, Seed: opt.seed}
		if opt.shedPolicy != "" {
			hc.Policy, _ = health.ParsePolicy(opt.shedPolicy) // validated already
		}
		h, err := health.New(hc)
		if err != nil {
			return err
		}
		opts = append(opts, broker.WithHealth(h))
	}
	var b *broker.Broker
	if opt.dataDir != "" {
		b, err = broker.Open(opt.dataDir, engine, opts...)
	} else {
		b, err = broker.New(engine, opts...)
	}
	if err != nil {
		return err
	}
	if opt.dataDir != "" {
		rec := b.Recovery()
		fmt.Printf("durable:    %s: checkpoint %v, %d journal(s), %d records replayed in %v\n",
			opt.dataDir, rec.CheckpointLoaded, rec.JournalsReplayed, rec.RecordsReplayed,
			rec.Duration.Round(time.Microsecond))
	}

	ln, err := net.Listen("tcp", opt.listen)
	if err != nil {
		b.Close()
		return err
	}
	fmt.Printf("listening:  %s (wire protocol v%d)\n", ln.Addr(), wire.Version)
	if opt.httpAddr != "" {
		tsrv, err := telemetry.Serve(opt.httpAddr, reg, nil)
		if err != nil {
			ln.Close()
			b.Close()
			return err
		}
		defer tsrv.Close()
		fmt.Printf("telemetry:  serving /metrics, /metrics.json, /debug/pprof/ on http://%s\n", tsrv.Addr())
	}

	// Graceful drain on the first signal: stop accepting, flush every
	// delivery to the connected clients, close the journal, exit 0. A
	// second signal forces an immediate stop.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	shutdownErr := make(chan error, 1)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "pubsub-server: draining (signal again to force stop)")
		ctx, cancel := context.WithTimeout(context.Background(), opt.drainTimeout)
		defer cancel()
		go func() {
			<-sigs
			cancel()
		}()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(ln, b); !errors.Is(err, transport.ErrServerClosed) {
		return err
	}
	if err := <-shutdownErr; err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	fmt.Println("drained:    all sessions flushed; broker closed")
	return nil
}
