// Command pubsub-server runs the broker as a TCP daemon speaking the wire
// protocol (see the Wire transport section of DESIGN.md). It builds the
// same world and clustering engine as pubsub-sim, then serves clients —
// subscriptions, publications and deliveries — over the network, with
// credit-based flow control and resumable sessions.
//
// Usage:
//
//	pubsub-server [flags]
//
// Flags:
//
//	-listen ADDR     TCP listen address (default 127.0.0.1:7070; use :0
//	                 for an ephemeral port, printed on startup)
//	-alg NAME        clustering algorithm: kmeans, forgy, mst, pairs,
//	                 approx-pairs (default forgy)
//	-groups K        number of multicast groups (default 100)
//	-subs N          pre-seeded subscriptions (default 1000)
//	-modes N         publication mixture modes (default 1)
//	-budget N        cell budget for grid algorithms (default 6000)
//	-threshold F     Fig 5 threshold (default 0 = always multicast)
//	-dynamic         per-event unicast/multicast/broadcast selection
//	-seed N          random seed (default 1)
//	-workers N       broker delivery workers (default 4)
//	-decide-workers N broker decision workers (0 = GOMAXPROCS)
//	-max-inflight N  admission bound on in-pipeline events (0 = unlimited)
//	-shed-policy P   overload policy: block, reject or shed
//	-data-dir DIR    durable broker state (journal + checkpoints),
//	                 recovered on restart; also enables replication —
//	                 a durable server accepts warm-standby followers on
//	                 its client listener
//	-replica-of ADDR run as a warm standby mirroring the leader at ADDR
//	                 (requires -data-dir); on leader death the standby
//	                 promotes itself and serves on -listen
//	-epoch-dir DIR   store the replication fencing epoch here instead of
//	                 inside -data-dir (e.g. on storage that survives a
//	                 data-dir rebuild)
//	-shards N        run an in-process federation: partition the
//	                 subscription space into N tiles (N a power of two)
//	                 and serve them through a federate.Router with
//	                 cross-shard exactly-once merge; incompatible with
//	                 -data-dir/-replica-of/-epoch-dir (run one durable
//	                 shard per process with -shard-of instead)
//	-shard-of I/N    serve only tile I of the N-tile derived partition:
//	                 the world is restricted to the subscriptions
//	                 intersecting that tile, and a federation router in
//	                 another process fans events out across the N
//	                 daemons; composes with -data-dir and -replica-of,
//	                 so each shard can be a replicated pair
//	-session-timeout D  how long a disconnected session may resume
//	                 (default 10s)
//	-drain-timeout D maximum graceful-drain time on SIGINT/SIGTERM
//	                 (default 30s)
//	-http ADDR       serve /metrics, /metrics.json and /debug/pprof/
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting
// connections, lets the broker flush every in-flight delivery to the
// connected clients, closes the journal (writing a final checkpoint when
// -data-dir is set), says goodbye to each session and exits 0. A second
// signal — or the drain timeout — forces an immediate stop. A drain that
// cannot complete — deadline hit, or the final checkpoint/journal close
// failed — exits 1 so supervisors see the durability risk.
//
// Replica pairs: start the leader with -data-dir, then a standby with
// -replica-of pointing at the leader's -listen address and its own
// -data-dir. The standby performs a full resync, then mirrors every
// journal record (publishes, subscription churn, delivery acks) with a
// dual-fsync barrier — the leader only acknowledges a publish once the
// record is durable on both sides or the standby has been declared dead.
// When the standby's failure detector declares the leader dead, it
// promotes itself: it persists a higher fencing epoch (so the old
// leader's stale writes are rejected if it comes back) and runs ordinary
// crash-restart recovery over the mirrored directory.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/federate"
	"repro/internal/health"
	"repro/internal/noloss"
	"repro/internal/replicate"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

type options struct {
	listen    string
	alg       string
	groups    int
	subs      int
	modes     int
	budget    int
	threshold float64
	dynamic   bool
	seed      int64

	workers       int
	decideWorkers int
	maxInflight   int
	shedPolicy    string
	dataDir       string
	replicaOf     string
	epochDir      string
	shards        int
	shardsSet     bool // -shards given explicitly (even as 0)
	shardOf       string

	sessionTimeout time.Duration
	drainTimeout   time.Duration
	httpAddr       string
}

func (o options) validate() error {
	if o.workers < 1 {
		return fmt.Errorf("-workers = %d: must be ≥ 1", o.workers)
	}
	if o.decideWorkers < 0 {
		return fmt.Errorf("-decide-workers = %d: must be ≥ 0 (0 = GOMAXPROCS)", o.decideWorkers)
	}
	if o.maxInflight < 0 {
		return fmt.Errorf("-max-inflight = %d: must be ≥ 0", o.maxInflight)
	}
	if o.shedPolicy != "" {
		if _, err := health.ParsePolicy(o.shedPolicy); err != nil {
			return fmt.Errorf("-shed-policy: %w", err)
		}
	}
	if o.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout = %v: must be > 0", o.drainTimeout)
	}
	if o.replicaOf != "" && o.dataDir == "" {
		return errors.New("-replica-of requires -data-dir (the standby mirrors into it)")
	}
	if o.epochDir != "" && o.dataDir == "" {
		return errors.New("-epoch-dir requires -data-dir (fencing is part of durable state)")
	}
	if o.shardsSet {
		if !powerOfTwo(o.shards) {
			return fmt.Errorf("-shards = %d: must be a power of two ≥ 1", o.shards)
		}
		if o.shardOf != "" {
			return errors.New("-shards and -shard-of are mutually exclusive: -shards runs the whole federation in one process, -shard-of serves one tile of it")
		}
		if o.dataDir != "" || o.replicaOf != "" || o.epochDir != "" {
			return errors.New("-shards is incompatible with -data-dir/-replica-of/-epoch-dir: run one durable shard per process with -shard-of instead")
		}
	}
	if o.shardOf != "" {
		if _, _, err := parseShardOf(o.shardOf); err != nil {
			return err
		}
	}
	return nil
}

func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// parseShardOf parses the -shard-of INDEX/COUNT flag.
func parseShardOf(s string) (idx, n int, err error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("-shard-of = %q: want INDEX/COUNT, e.g. 0/4", s)
	}
	idx, err1 := strconv.Atoi(s[:slash])
	n, err2 := strconv.Atoi(s[slash+1:])
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("-shard-of = %q: want INDEX/COUNT, e.g. 0/4", s)
	}
	if !powerOfTwo(n) {
		return 0, 0, fmt.Errorf("-shard-of = %q: shard count %d must be a power of two ≥ 1", s, n)
	}
	if idx < 0 || idx >= n {
		return 0, 0, fmt.Errorf("-shard-of = %q: index %d out of range [0, %d)", s, idx, n)
	}
	return idx, n, nil
}

func main() {
	var opt options
	flag.StringVar(&opt.listen, "listen", "127.0.0.1:7070", "TCP listen address")
	flag.StringVar(&opt.alg, "alg", "forgy", "clustering algorithm")
	flag.IntVar(&opt.groups, "groups", 100, "multicast groups")
	flag.IntVar(&opt.subs, "subs", 1000, "pre-seeded subscriptions")
	flag.IntVar(&opt.modes, "modes", 1, "publication mixture modes")
	flag.IntVar(&opt.budget, "budget", 6000, "cell budget for grid algorithms")
	flag.Float64Var(&opt.threshold, "threshold", 0, "Fig 5 multicast threshold")
	flag.BoolVar(&opt.dynamic, "dynamic", false, "per-event unicast/multicast/broadcast selection")
	flag.Int64Var(&opt.seed, "seed", 1, "random seed")
	flag.IntVar(&opt.workers, "workers", 4, "broker delivery workers")
	flag.IntVar(&opt.decideWorkers, "decide-workers", 0, "broker decision workers (0 = GOMAXPROCS)")
	flag.IntVar(&opt.maxInflight, "max-inflight", 0, "admission bound on in-pipeline events (0 = unlimited)")
	flag.StringVar(&opt.shedPolicy, "shed-policy", "", "overload policy: block, reject or shed")
	flag.StringVar(&opt.dataDir, "data-dir", "", "durable broker state directory")
	flag.StringVar(&opt.replicaOf, "replica-of", "", "run as a warm standby of the leader at this address")
	flag.StringVar(&opt.epochDir, "epoch-dir", "", "fencing-epoch directory (default: -data-dir)")
	flag.IntVar(&opt.shards, "shards", 0, "run an in-process federation of this many shards (power of two)")
	flag.StringVar(&opt.shardOf, "shard-of", "", "serve tile INDEX/COUNT of the derived partition")
	flag.DurationVar(&opt.sessionTimeout, "session-timeout", 10*time.Second, "disconnected-session resume window")
	flag.DurationVar(&opt.drainTimeout, "drain-timeout", 30*time.Second, "maximum graceful-drain time on shutdown")
	flag.StringVar(&opt.httpAddr, "http", "", "serve /metrics and /debug/pprof/ on this address")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			opt.shardsSet = true
		}
	})

	if err := opt.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "pubsub-server: %v\n", err)
		os.Exit(2)
	}
	if err := run(opt); err != nil {
		fmt.Fprintf(os.Stderr, "pubsub-server: %v\n", err)
		os.Exit(1)
	}
}

// buildWorld constructs the deterministic full world every role derives
// from the seed.
func buildWorld(opt options) (*workload.World, error) {
	topo := topology.Eval600
	topo.Seed = opt.seed
	g, err := topology.Generate(topo)
	if err != nil {
		return nil, err
	}
	return workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: opt.subs,
		BlockSplit:       []float64{0.4, 0.3, 0.3},
		NameMeans:        []float64{3, 10, 17},
		PubModes:         opt.modes,
		Seed:             opt.seed + 1,
	})
}

// clusterConfig resolves the -alg selection into a core configuration.
func clusterConfig(opt options) (core.Config, error) {
	cfg := core.Config{Groups: opt.groups, CellBudget: opt.budget, Threshold: opt.threshold, DynamicMethod: opt.dynamic}
	switch opt.alg {
	case "kmeans":
		cfg.Algorithm = &cluster.KMeans{Variant: cluster.MacQueen}
	case "forgy":
		cfg.Algorithm = &cluster.KMeans{Variant: cluster.Forgy}
	case "mst":
		cfg.Algorithm = &cluster.MST{}
	case "pairs":
		cfg.Algorithm = &cluster.Pairwise{}
	case "approx-pairs":
		cfg.Algorithm = &cluster.Pairwise{Approx: true}
	case "noloss":
		cfg.NoLoss = &noloss.Config{PoolSize: 5000, Iterations: 8}
	default:
		return core.Config{}, fmt.Errorf("unknown algorithm %q", opt.alg)
	}
	return cfg, nil
}

// buildEngine constructs the world and clustering engine both roles share:
// a standby needs the identical engine for promotion, a leader for serving.
// With -shard-of the world is first restricted to the owned tile, so a
// leader/standby pair running the same flags agree on the base state.
func buildEngine(opt options, reg *telemetry.Registry) (*core.Engine, *workload.World, error) {
	w, err := buildWorld(opt)
	if err != nil {
		return nil, nil, err
	}
	cfg, err := clusterConfig(opt)
	if err != nil {
		return nil, nil, err
	}
	train := w.Events(2000, opt.seed+2)
	if opt.shardOf != "" {
		idx, n, _ := parseShardOf(opt.shardOf) // validated at startup
		tiles, err := federate.Derive(w, train, n)
		if err != nil {
			return nil, nil, err
		}
		w, err = federate.TileWorld(w, tiles[idx])
		if err != nil {
			return nil, nil, err
		}
		fmt.Printf("shard:      tile %d/%d %v, %d subscriptions\n", idx, n, tiles[idx], len(w.Subs))
	}

	start := time.Now()
	engine, err := core.NewFromWorld(w, train, cfg)
	if err != nil {
		return nil, nil, err
	}
	engine.Instrument(reg)
	fmt.Printf("engine:     %s, K=%d groups (%d non-empty), built in %v\n",
		opt.alg, opt.groups, engine.NumGroups(), time.Since(start).Round(time.Millisecond))
	return engine, w, nil
}

// brokerOptions assembles the broker construction options shared by every
// role (the observer wires deliveries into the transport server).
func brokerOptions(opt options, reg *telemetry.Registry, srv *transport.Server) ([]broker.Option, error) {
	opts := []broker.Option{
		broker.WithWorkers(opt.workers),
		broker.WithDecideWorkers(opt.decideWorkers),
		broker.WithTelemetry(reg),
		broker.WithObserver(srv.Dispatch),
	}
	if opt.maxInflight > 0 || opt.shedPolicy != "" {
		hc := health.Config{MaxInflight: opt.maxInflight, Seed: opt.seed}
		if opt.shedPolicy != "" {
			hc.Policy, _ = health.ParsePolicy(opt.shedPolicy) // validated already
		}
		h, err := health.New(hc)
		if err != nil {
			return nil, err
		}
		opts = append(opts, broker.WithHealth(h))
	}
	return opts, nil
}

func run(opt options) error {
	reg := telemetry.NewRegistry()
	if opt.shardsSet {
		return runFederated(opt, reg)
	}
	engine, w, err := buildEngine(opt, reg)
	if err != nil {
		return err
	}
	if opt.replicaOf != "" {
		return runReplica(opt, reg, engine, w)
	}

	// A durable server is a replication leader (possibly solo forever):
	// followers dial the client listener and are routed by the first
	// frame. The handler closure is safe — no listener exists until
	// OpenLeader has returned and ldr is set.
	var ldr *replicate.Leader
	srvCfg := transport.Config{Registry: reg, SessionTimeout: opt.sessionTimeout}
	if opt.dataDir != "" {
		srvCfg.ReplHandler = func(conn net.Conn, r *wire.Reader, w *wire.Writer, hello wire.ReplHello) {
			ldr.Accept(conn, r, w, hello)
		}
	}
	srv := transport.NewServer(srvCfg)
	opts, err := brokerOptions(opt, reg, srv)
	if err != nil {
		return err
	}
	var b *broker.Broker
	if opt.dataDir != "" {
		ldr, err = replicate.OpenLeader(opt.dataDir, engine, replicate.LeaderConfig{EpochDir: opt.epochDir}, opts...)
		if err != nil {
			return err
		}
		b = ldr.Broker()
	} else {
		b, err = broker.New(engine, opts...)
		if err != nil {
			return err
		}
	}
	return serve(opt, reg, srv, b, ldr)
}

// runFederated runs the whole federation in one process: derive the
// N-tile partition from the seeded world, build one broker per tile, and
// serve the federate.Router — which fans publishes out to overlapping
// tiles and merges deliveries exactly-once — as the wire backend.
func runFederated(opt options, reg *telemetry.Registry) error {
	w, err := buildWorld(opt)
	if err != nil {
		return err
	}
	cfg, err := clusterConfig(opt)
	if err != nil {
		return err
	}
	train := w.Events(2000, opt.seed+2)
	tiles, err := federate.Derive(w, train, opt.shards)
	if err != nil {
		return err
	}

	srv := transport.NewServer(transport.Config{Registry: reg, SessionTimeout: opt.sessionTimeout})
	r, err := federate.NewRouter(federate.Config{Tiles: tiles, Observer: srv.Dispatch})
	if err != nil {
		return err
	}
	start := time.Now()
	for i, tile := range tiles {
		tw, err := federate.TileWorld(w, tile)
		if err != nil {
			r.Close()
			return err
		}
		engine, err := core.NewFromWorld(tw, train, cfg)
		if err != nil {
			r.Close()
			return err
		}
		bopts := []broker.Option{
			broker.WithWorkers(opt.workers),
			broker.WithDecideWorkers(opt.decideWorkers),
			broker.WithObserver(r.ShardObserver(i)),
		}
		if opt.maxInflight > 0 || opt.shedPolicy != "" {
			hc := health.Config{MaxInflight: opt.maxInflight, Seed: opt.seed}
			if opt.shedPolicy != "" {
				hc.Policy, _ = health.ParsePolicy(opt.shedPolicy) // validated already
			}
			h, err := health.New(hc)
			if err != nil {
				r.Close()
				return err
			}
			bopts = append(bopts, broker.WithHealth(h))
		}
		b, err := broker.New(engine, bopts...)
		if err != nil {
			r.Close()
			return err
		}
		if err := r.Attach(i, b); err != nil {
			b.Close()
			r.Close()
			return err
		}
		fmt.Printf("shard %d:    tile %v, %d subscriptions, %d non-empty groups\n",
			i, tile, len(tw.Subs), engine.NumGroups())
	}
	fmt.Printf("federation: %d shards (%s, K=%d each) built in %v\n",
		opt.shards, opt.alg, opt.groups, time.Since(start).Round(time.Millisecond))
	return serve(opt, reg, srv, r, nil)
}

// runReplica runs the warm-standby role: mirror the leader's journal
// stream until either a signal stops the process or the failure detector
// declares the leader dead — then promote and serve clients as the new
// leader (accepting followers in turn, so the fenced ex-leader can
// rejoin as the standby).
func runReplica(opt options, reg *telemetry.Registry, engine *core.Engine, w *workload.World) error {
	base := durable.BaseInfo{Hash: durable.HashBase(w.Subs), Count: int64(len(w.Subs))}
	flw, err := replicate.StartFollower(replicate.FollowerConfig{
		Dir:      opt.dataDir,
		EpochDir: opt.epochDir,
		Base:     base,
		Addr:     opt.replicaOf,
	})
	if err != nil {
		return err
	}
	fmt.Printf("standby:    mirroring %s into %s (epoch %d)\n", opt.replicaOf, opt.dataDir, flw.Term())

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sigs:
		signal.Stop(sigs)
		fmt.Println("standby:    stopping (leader still alive)")
		return flw.Close()
	case <-flw.LeaderDead():
		signal.Stop(sigs)
	}
	fmt.Println("failover:   leader declared dead; promoting")

	var ldr *replicate.Leader
	srvCfg := transport.Config{Registry: reg, SessionTimeout: opt.sessionTimeout}
	srvCfg.ReplHandler = func(conn net.Conn, r *wire.Reader, w *wire.Writer, hello wire.ReplHello) {
		ldr.Accept(conn, r, w, hello)
	}
	srv := transport.NewServer(srvCfg)
	opts, err := brokerOptions(opt, reg, srv)
	if err != nil {
		return err
	}
	ldr, err = flw.PromoteLeader(engine, replicate.LeaderConfig{EpochDir: opt.epochDir}, opts...)
	if err != nil {
		return err
	}
	flw.Close() // replication loop only; the promoted broker owns the dir
	fmt.Printf("promoted:   serving as leader (epoch %d)\n", ldr.Term())
	return serve(opt, reg, srv, ldr.Broker(), ldr)
}

// serve owns the listening phase for every role. ldr is non-nil when the
// broker is a replication leader; it is closed after the transport drain
// so the final checkpoint ships to a connected follower first, and so the
// replication session (which Serve waits on like any connection) ends.
func serve(opt options, reg *telemetry.Registry, srv *transport.Server, b transport.Backend, ldr *replicate.Leader) error {
	closeBroker := func() {
		if ldr != nil {
			ldr.Close()
		} else {
			b.Close()
		}
	}
	if opt.dataDir != "" {
		if db, ok := b.(*broker.Broker); ok {
			rec := db.Recovery()
			fmt.Printf("durable:    %s: checkpoint %v, %d journal(s), %d records replayed in %v\n",
				opt.dataDir, rec.CheckpointLoaded, rec.JournalsReplayed, rec.RecordsReplayed,
				rec.Duration.Round(time.Microsecond))
		}
	}
	if ldr != nil {
		fmt.Printf("replicate:  epoch %d; followers attach on the client listener\n", ldr.Term())
	}

	ln, err := net.Listen("tcp", opt.listen)
	if err != nil {
		closeBroker()
		return err
	}
	fmt.Printf("listening:  %s (wire protocol v%d)\n", ln.Addr(), wire.Version)
	if opt.httpAddr != "" {
		tsrv, err := telemetry.Serve(opt.httpAddr, reg, nil)
		if err != nil {
			ln.Close()
			closeBroker()
			return err
		}
		defer tsrv.Close()
		fmt.Printf("telemetry:  serving /metrics, /metrics.json, /debug/pprof/ on http://%s\n", tsrv.Addr())
	}

	// Graceful drain on the first signal: stop accepting, flush every
	// delivery to the connected clients, close the journal, exit 0. A
	// second signal forces an immediate stop. Any drain failure — deadline
	// hit, final checkpoint or journal close error — propagates to a
	// non-zero exit.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	shutdownErr := make(chan error, 1)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "pubsub-server: draining (signal again to force stop)")
		ctx, cancel := context.WithTimeout(context.Background(), opt.drainTimeout)
		defer cancel()
		go func() {
			<-sigs
			cancel()
		}()
		err := srv.Shutdown(ctx)
		if ldr != nil {
			// The broker is closed (its final checkpoint shipped through
			// the live session); now sever replication so the follower
			// connection Serve is waiting on unwinds.
			if cerr := ldr.Close(); err == nil {
				err = cerr
			}
		}
		shutdownErr <- err
	}()

	if err := srv.Serve(ln, b); !errors.Is(err, transport.ErrServerClosed) {
		return err
	}
	if err := <-shutdownErr; err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	fmt.Println("drained:    all sessions flushed; broker closed")
	return nil
}
