// Package pubsub is the public face of this reproduction of "Clustering
// Algorithms for Content-Based Publication-Subscription Systems" (Riabov,
// Liu, Wolf, Yu, Zhang — ICDCS 2002).
//
// The library models a content-based pub-sub system end to end:
//
//   - subscriptions are axis-aligned rectangles over an N-dimensional
//     event space; events are points (space types: Interval, Rect, Point);
//   - the network is a GT-ITM-style transit–stub topology with edge costs
//     (GenerateTopology and the NetXXX presets);
//   - delivery costs follow the paper's model: unicast, broadcast, ideal
//     multicast, dense-mode network multicast and application-level
//     overlay multicast (CostModel);
//   - the paper's clustering algorithms precompute K multicast groups:
//     K-Means, Forgy K-Means, MST, Pairwise Grouping, Approximate Pairwise
//     (grid-based framework) and No-Loss (rectangle intersections);
//   - an Engine ties it together: match each event (R*-tree), route it to
//     a group or fall back to unicast, and support live subscription
//     additions/removals with warm-started re-clustering.
//
// Quickstart:
//
//	g, _ := pubsub.GenerateTopology(pubsub.TopologyConfig{
//		TransitBlocks: 3, TransitPerBlock: 5, StubsPerTransit: 2, NodesPerStub: 20,
//	})
//	w, _ := pubsub.NewStockWorld(g, pubsub.StockConfig{NumSubscriptions: 1000, PubModes: 1})
//	train := w.Events(2000, 1)
//	engine, _ := pubsub.NewEngineFromWorld(w, train, pubsub.EngineConfig{Groups: 100})
//	for _, ev := range w.Events(500, 2) {
//		decision, costs, _ := engine.Publish(ev)
//		_ = decision
//		_ = costs
//	}
//
// The experiment runners behind every table and figure of the paper live
// in internal/experiments and are exposed through the pubsub-bench
// command.
package pubsub

import (
	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/federate"
	"repro/internal/health"
	"repro/internal/multicast"
	"repro/internal/noloss"
	"repro/internal/replicate"
	"repro/internal/space"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Event-space types.
type (
	// Interval is a half-open interval (Lo, Hi].
	Interval = space.Interval
	// Rect is an axis-aligned rectangle, one Interval per dimension.
	Rect = space.Rect
	// Point is a published event's coordinates.
	Point = space.Point
	// Axis is one dimension of the clustering grid.
	Axis = space.Axis
	// Grid is a regular grid over the event space.
	Grid = space.Grid
	// Predicate is one attribute's interest as a union of intervals.
	Predicate = space.Predicate
)

// Interval constructors.
var (
	// Span returns the interval (lo, hi].
	Span = space.Span
	// LeftOf returns (-inf, hi].
	LeftOf = space.LeftOf
	// RightOf returns (lo, +inf].
	RightOf = space.RightOf
	// FullInterval returns (-inf, +inf].
	FullInterval = space.Full
	// FullRect returns the all-space rectangle of a dimension.
	FullRect = space.FullRect
	// NewGrid builds a grid from axes.
	NewGrid = space.NewGrid
	// Decompose expands multi-interval predicates into disjoint rectangles
	// (the paper's §1 subscription decomposition).
	Decompose = space.Decompose
)

// Network types.
type (
	// Graph is an undirected weighted network with transit–stub structure.
	Graph = topology.Graph
	// NodeID identifies a network node.
	NodeID = topology.NodeID
	// TopologyConfig parameterises the transit–stub generator.
	TopologyConfig = topology.Config
)

// Topology presets and generator.
var (
	// GenerateTopology builds a random transit–stub network.
	GenerateTopology = topology.Generate
	// Net100, Net300, Net600 are the Table 1/2 networks; Eval600 is the
	// §5.1 evaluation network.
	Net100  = topology.Net100
	Net300  = topology.Net300
	Net600  = topology.Net600
	Eval600 = topology.Eval600
)

// Workload types.
type (
	// Subscription is an interest rectangle owned by a node.
	Subscription = workload.Subscription
	// Event is one publication.
	Event = workload.Event
	// World couples a network with subscriptions and an event source.
	World = workload.World
	// StockConfig parameterises the §5.1 stock workload.
	StockConfig = workload.StockConfig
	// RegionalConfig parameterises the §3 regionalism workload.
	RegionalConfig = workload.RegionalConfig
	// PrefDist selects uniform or gaussian §3 preferences.
	PrefDist = workload.PrefDist
)

// Workload constructors and constants.
var (
	// NewStockWorld generates the §5.1 workload.
	NewStockWorld = workload.NewStockWorld
	// NewRegionalWorld generates the §3 workload.
	NewRegionalWorld = workload.NewRegionalWorld
	// NewCustomWorld wraps caller-provided subscriptions.
	NewCustomWorld = workload.NewCustomWorld
)

// §3 preference families.
const (
	Uniform  = workload.Uniform
	Gaussian = workload.Gaussian
)

// Clustering types.
type (
	// ClusterAlgorithm partitions hyper-cells into multicast groups.
	ClusterAlgorithm = cluster.Algorithm
	// KMeans is the iterative clustering algorithm (MacQueen or Forgy).
	KMeans = cluster.KMeans
	// MST is the minimum-spanning-tree clustering algorithm.
	MST = cluster.MST
	// Pairwise is the (approximate) pairwise grouping algorithm.
	Pairwise = cluster.Pairwise
	// NoLossConfig parameterises the No-Loss algorithm.
	NoLossConfig = noloss.Config
)

// K-means variants.
const (
	MacQueen = cluster.MacQueen
	Forgy    = cluster.Forgy
)

// Cost model.
type (
	// CostModel prices deliveries on a network.
	CostModel = multicast.Model
	// Method is a distribution method.
	Method = multicast.Method
)

// NewCostModel creates a cost model over a network.
var NewCostModel = multicast.NewModel

// Distribution methods.
const (
	UnicastMethod           = multicast.Unicast
	BroadcastMethod         = multicast.Broadcast
	IdealMethod             = multicast.Ideal
	NetworkMulticastMethod  = multicast.NetworkMulticast
	AppLevelMulticastMethod = multicast.AppLevelMulticast
)

// Engine types.
type (
	// Engine is a running pub-sub delivery system.
	Engine = core.Engine
	// EngineConfig selects the clustering strategy.
	EngineConfig = core.Config
	// Decision is the delivery plan for one event.
	Decision = core.Decision
	// GroupInfo describes one precomputed multicast group.
	GroupInfo = core.GroupInfo
	// DeliveryCosts prices a decision under both multicast frameworks.
	DeliveryCosts = core.Costs
)

// Engine constructors.
var (
	// NewEngine builds an Engine from explicit parts.
	NewEngine = core.New
	// NewEngineFromWorld builds an Engine from a generated workload.
	NewEngineFromWorld = core.NewFromWorld
)

// Delivery fabric.
type (
	// Broker executes Engine decisions over an in-process delivery fabric
	// with per-node inboxes and delivery accounting.
	Broker = broker.Broker
	// BrokerStats aggregates broker delivery accounting.
	BrokerStats = broker.Stats
	// BrokerDelivery is one message copy arriving at a node.
	BrokerDelivery = broker.Delivery
	// ReliabilityConfig bounds the broker's retry protocol.
	ReliabilityConfig = broker.ReliabilityConfig
)

// Broker constructors and options.
var (
	// NewBroker starts a broker over an engine.
	NewBroker = broker.New
	// WithWorkers sets the broker's fan-out worker count.
	WithWorkers = broker.WithWorkers
	// WithDecideWorkers sets the decision worker count (0 = GOMAXPROCS;
	// 1 pins a serial, sequence-ordered decision stage).
	WithDecideWorkers = broker.WithDecideWorkers
	// WithObserver registers a per-delivery callback.
	WithObserver = broker.WithObserver
	// WithFaults plugs a fault injector into the delivery fabric.
	WithFaults = broker.WithFaults
	// WithReliability tunes the retry/backoff protocol.
	WithReliability = broker.WithReliability
	// WithTelemetry shares a metrics registry with the broker.
	WithTelemetry = broker.WithTelemetry
	// WithTracer records per-event lifecycle traces.
	WithTracer = broker.WithTracer
	// WithHealth attaches overload protection and the self-healing control
	// loop to a broker.
	WithHealth = broker.WithHealth
	// WithDecisionObserver registers a per-decision callback with priced
	// costs (runs on the decision workers; keep it fast, and pin
	// WithDecideWorkers(1) when it must see decisions in sequence order).
	WithDecisionObserver = broker.WithDecisionObserver
	// ErrBrokerClosed is returned by Publish after Close.
	ErrBrokerClosed = broker.ErrClosed
)

// Health: admission control, per-destination circuit breakers and the
// self-healing control loop (see the Failure handling lifecycle section of
// DESIGN.md).
type (
	// Health bundles the overload-protection subsystem for one broker.
	Health = health.Health
	// HealthConfig tunes admission, breakers and the control loop.
	HealthConfig = health.Config
	// AdmissionPolicy selects the overload response.
	AdmissionPolicy = health.Policy
	// BreakerSnapshot is a point-in-time view of the circuit breakers.
	BreakerSnapshot = health.TrackerSnapshot
)

// Overload policies.
const (
	// BlockPolicy is lossless backpressure: Publish waits for a slot.
	BlockPolicy = health.Block
	// RejectNewestPolicy fails fast with ErrOverloaded when saturated.
	RejectNewestPolicy = health.RejectNewest
	// ShedLowFanoutPolicy drops decided events below the mean fanout when
	// the pipeline congests.
	ShedLowFanoutPolicy = health.ShedLowFanout
)

// Health constructors and errors.
var (
	// NewHealth validates a config and builds the health subsystem.
	NewHealth = health.New
	// ParseAdmissionPolicy maps flag spellings to policies.
	ParseAdmissionPolicy = health.ParsePolicy
	// ErrOverloaded is returned by Publish under RejectNewest admission.
	ErrOverloaded = health.ErrOverloaded
)

// Telemetry: zero-dependency metrics, per-event tracing and exporters (see
// the Observability section of DESIGN.md).
type (
	// MetricsRegistry holds named scopes of counters, gauges and
	// histograms; snapshots are lock-free and monotone.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a point-in-time read of one scope.
	MetricsSnapshot = telemetry.ScopeSnapshot
	// Tracer samples publications deterministically and records their
	// lifecycle spans into a bounded ring.
	Tracer = telemetry.Tracer
	// TracerConfig sizes the ring and sets the sampling rate and seed.
	TracerConfig = telemetry.TracerConfig
)

// Telemetry constructors and exporters.
var (
	// NewMetricsRegistry creates an empty registry.
	NewMetricsRegistry = telemetry.NewRegistry
	// NewTracer builds a trace recorder.
	NewTracer = telemetry.NewTracer
	// WriteMetricsJSON dumps a registry snapshot as indented JSON.
	WriteMetricsJSON = telemetry.WriteJSON
	// WriteMetricsPrometheus dumps a snapshot in Prometheus text format.
	WriteMetricsPrometheus = telemetry.WritePrometheus
	// ServeTelemetry exposes /metrics, /trace and /debug/pprof/ over HTTP.
	ServeTelemetry = telemetry.Serve
)

// Durability: write-ahead journal, checkpointed snapshots and
// crash–restart recovery with exactly-once redelivery (see the Durability
// & recovery section of DESIGN.md).
type (
	// DurableOptions tunes the durable store's checkpoint cadence and arms
	// deterministic crash injection for chaos tests.
	DurableOptions = durable.Options
	// RecoveryStats summarises one crash–restart recovery: checkpoint
	// loaded, journals and records replayed, torn tails truncated,
	// stranded publishes redelivered, and the recovery duration.
	RecoveryStats = durable.RecoveryStats
	// CrashPlan schedules one deterministic crash against a durable store.
	CrashPlan = faults.CrashPlan
	// CrashPoint selects where a scheduled crash fires relative to a
	// durable-store operation.
	CrashPoint = faults.CrashPoint
	// CrashInjector arms a CrashPlan; one injector simulates exactly one
	// process death.
	CrashInjector = faults.CrashInjector
)

// Crash points (the classic write-ahead-log failure windows).
const (
	// CrashBeforeAppend dies before the journal record reaches the disk.
	CrashBeforeAppend = faults.CrashBeforeAppend
	// CrashAfterAppend dies after the record is durable but before the
	// append returns.
	CrashAfterAppend = faults.CrashAfterAppend
	// CrashTornAppend dies mid-write, leaving a torn frame for recovery to
	// CRC-detect and truncate.
	CrashTornAppend = faults.CrashTornAppend
	// CrashMidCheckpoint dies between writing the checkpoint temp file and
	// atomically installing it.
	CrashMidCheckpoint = faults.CrashMidCheckpoint
)

// Durability constructors, options and errors.
var (
	// OpenBroker opens (or creates) a durable broker: state persists in a
	// directory as a write-ahead journal plus checkpoints, and a restart
	// recovers subscriptions, dedup windows and undelivered publishes.
	OpenBroker = broker.Open
	// WithDurableOptions overrides the durable store's defaults on
	// OpenBroker.
	WithDurableOptions = broker.WithDurableOptions
	// NewCrashInjector arms a crash plan for WithDurableOptions.
	NewCrashInjector = faults.NewCrashInjector
	// ErrCrashed reports a simulated process crash; the durable broker
	// refuses further work until re-opened.
	ErrCrashed = faults.ErrCrashed
)

// Fault injection: deterministic drop/duplicate/delay/link-failure/crash
// schedules for chaos-testing the delivery fabric.
type (
	// FaultConfig parameterises a fault injector.
	FaultConfig = faults.Config
	// FaultInjector makes seeded, reproducible fault decisions.
	FaultInjector = faults.Injector
	// Crash takes one node down for a sequence-number window.
	Crash = faults.Crash
	// Flap periodically fails one link.
	Flap = faults.Flap
	// LinkOutage takes one link down for a sequence-number window.
	LinkOutage = faults.LinkOutage
	// EdgeKey canonically identifies an undirected network edge.
	EdgeKey = topology.EdgeKey
)

// Fault-injection constructors.
var (
	// NewFaultInjector validates a fault config and builds the injector.
	NewFaultInjector = faults.New
	// MakeEdgeKey canonicalises an undirected edge identity.
	MakeEdgeKey = topology.MakeEdgeKey
)

// Wire transport: the broker over TCP — a daemon Server speaking a
// compact length-prefixed, CRC-framed binary protocol, and a client Conn
// with credit-based end-to-end flow control that transparently reconnects
// and resumes its session, preserving exactly-once delivery across
// connection resets (see the Wire transport section of DESIGN.md).
type (
	// WireServer accepts wire-protocol connections and bridges them to a
	// Broker via its observer hook.
	WireServer = transport.Server
	// WireServerConfig tunes the server: flush window, batch size, session
	// buffer and resume timeout, TLS.
	WireServerConfig = transport.Config
	// WireClient is a reconnecting client connection with exactly-once
	// publish and delivery semantics.
	WireClient = transport.Conn
	// WireClientConfig tunes the client: credit window, reconnect backoff,
	// custom dialer (the fault-injection hook), TLS.
	WireClientConfig = transport.ClientConfig
	// WireDeliver is one delivery as received over the wire.
	WireDeliver = wire.Deliver
	// ConnFaultConfig schedules connection-level faults: mid-stream
	// resets, chunked partial writes, read/write stalls.
	ConnFaultConfig = faults.ConnConfig
	// ConnFaultInjector wraps net.Conns with a deterministic fault
	// schedule.
	ConnFaultInjector = faults.ConnInjector
)

// Wire-transport constructors and errors.
var (
	// NewWireServer builds a transport server; wire its Dispatch method as
	// the broker's observer.
	NewWireServer = transport.NewServer
	// DialWire connects a client to a WireServer.
	DialWire = transport.Dial
	// ErrWireServerClosed is Serve's return after a graceful Shutdown.
	ErrWireServerClosed = transport.ErrServerClosed
	// ErrWireConnClosed is returned by client operations after the
	// connection ends.
	ErrWireConnClosed = transport.ErrConnClosed
	// NewConnFaultInjector validates a conn-fault config and builds the
	// injector.
	NewConnFaultInjector = faults.NewConnInjector
)

// WireProtocolVersion is the frame-protocol version this build speaks;
// hellos carrying any other version are rejected.
const WireProtocolVersion = wire.Version

// Replication: warm-standby broker pairs. A ReplicaLeader ships every
// journal record to a ReplicaFollower over the wire framing and fsyncs on
// both sides before a publish is acknowledged; on leader death the
// follower promotes itself behind a monotonically increasing fencing
// epoch, preserving exactly-once delivery across the handover (see the
// Replicated broker pairs section of DESIGN.md).
type (
	// ReplicaLeader is a durable broker that streams its journal to a
	// warm-standby follower and gates publishes on the remote fsync.
	ReplicaLeader = replicate.Leader
	// ReplicaLeaderConfig tunes the leader: ack timeout, heartbeat
	// cadence, failure detector, fencing-epoch directory.
	ReplicaLeaderConfig = replicate.LeaderConfig
	// ReplicaLeaderStats counts shipped records, acks, solo drops and
	// session turnovers.
	ReplicaLeaderStats = replicate.LeaderStats
	// ReplicaFollower mirrors a leader's journal into its own directory
	// and can promote itself into a serving broker when the leader dies.
	ReplicaFollower = replicate.Follower
	// ReplicaFollowerConfig tunes the follower: leader address, data and
	// epoch directories, reconnect backoff, failure detector.
	ReplicaFollowerConfig = replicate.FollowerConfig
)

// Replication constructors and errors.
var (
	// OpenReplicaLeader opens a durable broker whose journal appends ship
	// to any connected follower; serve followers with its Serve or Accept.
	OpenReplicaLeader = replicate.OpenLeader
	// StartReplicaFollower connects a warm standby to a leader and keeps
	// its mirror in sync until Promote or Close.
	StartReplicaFollower = replicate.StartFollower
	// ErrReplicaFenced reports that a higher fencing epoch was observed:
	// another leader was promoted and this one must stand down.
	ErrReplicaFenced = replicate.ErrFenced
	// ErrReplicaNotLeader is returned by follower publish/apply paths.
	ErrReplicaNotLeader = replicate.ErrNotLeader
)

// Federation: the subscription space rectangle-partitioned across N
// shards behind one Router, which routes subscription churn to the
// owning shard(s), fans each publish out to every tile overlapping the
// event point and merges the per-shard delivery streams exactly-once —
// deduplicating boundary straddlers and chasing replica failovers (see
// the Federated broker shards section of DESIGN.md).
type (
	// FederationPartition is an ordered list of shard tiles covering Ω.
	FederationPartition = federate.Partition
	// FederationRouter owns the shards, the fan-out and the merge.
	FederationRouter = federate.Router
	// FederationConfig tunes a router: tiles, merged-delivery observer,
	// shard re-resolution hook, dedup and retry windows.
	FederationConfig = federate.Config
	// FederationSubID names a federated subscription across shards.
	FederationSubID = federate.SubID
	// FederationStats counts fan-outs, retries, re-resolutions and
	// suppressed duplicate deliveries.
	FederationStats = federate.Stats
	// FederationRemote is a shard reached over the wire transport.
	FederationRemote = federate.Remote
	// BrokerShard is the decision-fabric surface every shard implements:
	// in-process brokers, replica leaders, wire-attached remotes.
	BrokerShard = broker.Shard
)

// Federation constructors and errors.
var (
	// DerivePartition splits a workload into power-of-two weighted tiles.
	DerivePartition = federate.Derive
	// TileWorld restricts a world to the subscriptions one tile serves.
	TileWorld = federate.TileWorld
	// NewFederationRouter validates a config and builds the router.
	NewFederationRouter = federate.NewRouter
	// AttachRemoteShard dials a wire server and attaches it as a shard.
	AttachRemoteShard = federate.AttachRemote
	// ErrFederationClosed is returned by operations after Router.Close.
	ErrFederationClosed = federate.ErrClosed
	// ErrFederationNoShard reports an event or subscription whose tiles
	// have no attached, resolvable shard.
	ErrFederationNoShard = federate.ErrNoShard
	// ErrFederationUnknownSub is Unsubscribe's report for an unknown ID.
	ErrFederationUnknownSub = federate.ErrUnknownSub
)

// Persistence: round-trippable text formats for topologies, subscription
// sets and event traces (bring-your-own-workload, archive-for-repro).
var (
	// WriteTopology and ReadTopology serialise networks.
	WriteTopology = topology.WriteText
	ReadTopology  = topology.ReadText
	// WriteTopologyDOT emits Graphviz DOT for visualisation.
	WriteTopologyDOT = topology.WriteDOT
	// WriteSubscriptions and ReadSubscriptions serialise interest sets.
	WriteSubscriptions = workload.WriteSubscriptions
	ReadSubscriptions  = workload.ReadSubscriptions
	// WriteEvents and ReadEvents serialise publication traces.
	WriteEvents = workload.WriteEvents
	ReadEvents  = workload.ReadEvents
)
