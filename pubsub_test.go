package pubsub_test

import (
	"errors"
	"strings"
	"testing"

	pubsub "repro"
)

// The facade tests exercise the library the way a downstream user would:
// only through the root package's exported names.

func buildWorld(t testing.TB, subs int, seed int64) (*pubsub.World, []pubsub.Event) {
	t.Helper()
	g, err := pubsub.GenerateTopology(pubsub.Eval600)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pubsub.NewStockWorld(g, pubsub.StockConfig{
		NumSubscriptions: subs, PubModes: 1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, w.Events(800, seed+1)
}

func TestFacadeEndToEnd(t *testing.T) {
	w, train := buildWorld(t, 300, 90)
	engine, err := pubsub.NewEngineFromWorld(w, train, pubsub.EngineConfig{
		Groups:     25,
		Algorithm:  &pubsub.KMeans{Variant: pubsub.Forgy},
		CellBudget: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if engine.NumGroups() == 0 {
		t.Fatal("no groups")
	}
	multicasts := 0
	for _, ev := range w.Events(100, 92) {
		d, costs, err := engine.Publish(ev)
		if err != nil {
			t.Fatal(err)
		}
		if costs.AppLevel < costs.Network-1e-9 {
			t.Fatal("cost ordering broken")
		}
		if d.Method == pubsub.NetworkMulticastMethod {
			multicasts++
			info := engine.Group(d.Group)
			if len(info.Nodes) == 0 {
				t.Fatal("empty group routed")
			}
		}
	}
	if multicasts == 0 {
		t.Error("nothing multicast")
	}
}

func TestFacadeIntervalHelpers(t *testing.T) {
	r := pubsub.Rect{
		pubsub.Span(0, 1),
		pubsub.LeftOf(5),
		pubsub.RightOf(2),
		pubsub.FullInterval(),
	}
	if !r.Contains(pubsub.Point{0.5, -100, 3, 42}) {
		t.Error("facade rect containment broken")
	}
	if fr := pubsub.FullRect(3); fr.Dim() != 3 {
		t.Error("FullRect wrong")
	}
}

func TestFacadeDecompose(t *testing.T) {
	rects, err := pubsub.Decompose([]pubsub.Predicate{
		{pubsub.Span(0, 1), pubsub.Span(3, 4)},
		{pubsub.Span(10, 20)},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 2 {
		t.Fatalf("rects = %d", len(rects))
	}
}

func TestFacadeCostModel(t *testing.T) {
	g, err := pubsub.GenerateTopology(pubsub.Net100)
	if err != nil {
		t.Fatal(err)
	}
	m := pubsub.NewCostModel(g)
	if m.BroadcastCost(0) <= 0 {
		t.Error("broadcast cost non-positive")
	}
	if m.Dist(0, 0) != 0 {
		t.Error("self distance non-zero")
	}
	o := m.BuildOverlay([]pubsub.NodeID{1, 2, 3})
	if m.ALMCost(0, o) <= 0 {
		t.Error("ALM cost non-positive")
	}
}

func TestFacadeBroker(t *testing.T) {
	w, train := buildWorld(t, 200, 94)
	engine, err := pubsub.NewEngineFromWorld(w, train, pubsub.EngineConfig{
		Groups: 10, CellBudget: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pubsub.NewBroker(engine, pubsub.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range w.Events(50, 95) {
		b.Publish(ev)
	}
	b.Close()
	st := b.Stats()
	if st.Published != 50 {
		t.Errorf("Published = %d", st.Published)
	}
}

// TestFacadeDurable drives the durability surface end to end through the
// facade: a durable broker, a scheduled crash, and a recovery that
// redelivers the stranded publishes.
func TestFacadeDurable(t *testing.T) {
	w, train := buildWorld(t, 200, 96)
	dir := t.TempDir()
	newEngine := func() *pubsub.Engine {
		engine, err := pubsub.NewEngineFromWorld(w, train, pubsub.EngineConfig{
			Groups: 10, CellBudget: 300,
		})
		if err != nil {
			t.Fatal(err)
		}
		return engine
	}

	inj := pubsub.NewCrashInjector(pubsub.CrashPlan{AtAppend: 120, Point: pubsub.CrashAfterAppend})
	b, err := pubsub.OpenBroker(dir, newEngine(),
		pubsub.WithDurableOptions(pubsub.DurableOptions{Crash: inj}))
	if err != nil {
		t.Fatal(err)
	}
	// Delivery acks append to the journal asynchronously, so which append
	// is the 120th — a publish's or an ack's — depends on scheduling. Keep
	// publishing until the crash surfaces through Publish: once any append
	// trips the plan the store is dead and the next publish must fail.
	crashed := 0
	for _, ev := range w.Events(500, 97) {
		if err := b.Publish(ev); err != nil {
			if !errors.Is(err, pubsub.ErrCrashed) {
				t.Fatalf("publish: %v", err)
			}
			crashed++
			break
		}
	}
	b.Close()
	if crashed == 0 {
		t.Fatal("scheduled crash never fired")
	}

	b2, err := pubsub.OpenBroker(dir, newEngine())
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	var rec pubsub.RecoveryStats = b2.Recovery()
	if rec.RecordsReplayed == 0 || rec.Outstanding == 0 {
		t.Errorf("recovery replayed nothing: %+v", rec)
	}
	if rec.CheckpointLoaded {
		t.Errorf("no checkpoint was ever committed, yet one loaded: %+v", rec)
	}
}

func TestFacadeHealth(t *testing.T) {
	w, train := buildWorld(t, 200, 96)
	engine, err := pubsub.NewEngineFromWorld(w, train, pubsub.EngineConfig{
		Groups: 10, CellBudget: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := pubsub.ParseAdmissionPolicy("reject")
	if err != nil {
		t.Fatal(err)
	}
	if pol != pubsub.RejectNewestPolicy {
		t.Fatalf("ParseAdmissionPolicy(reject) = %v", pol)
	}
	h, err := pubsub.NewHealth(pubsub.HealthConfig{
		MaxInflight: 64,
		Policy:      pubsub.BlockPolicy,
		AutoRefresh: true,
		Seed:        96,
	})
	if err != nil {
		t.Fatal(err)
	}
	decisions := 0
	// WithDecideWorkers(1) keeps the observer single-threaded.
	b, err := pubsub.NewBroker(engine, pubsub.WithWorkers(2), pubsub.WithDecideWorkers(1),
		pubsub.WithHealth(h),
		pubsub.WithDecisionObserver(func(seq int64, ev pubsub.Event, d pubsub.Decision, c pubsub.DeliveryCosts) {
			decisions++
		}))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range w.Events(50, 97) {
		if err := b.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	if decisions != 50 {
		t.Errorf("decision observer saw %d events, want 50", decisions)
	}
	var snap pubsub.BreakerSnapshot = h.Tracker.Snapshot()
	if snap.Open != 0 {
		t.Errorf("healthy run opened %d breakers", snap.Open)
	}
	if st := b.Stats(); st.Rejected != 0 || st.Shed != 0 {
		t.Errorf("lossless run rejected %d shed %d", st.Rejected, st.Shed)
	}
}

func TestFacadeCustomWorldAndPredicates(t *testing.T) {
	g, err := pubsub.GenerateTopology(pubsub.Net100)
	if err != nil {
		t.Fatal(err)
	}
	// A "blue chip" style composite subscription decomposed into rects.
	rects, err := pubsub.Decompose([]pubsub.Predicate{
		{pubsub.Span(0, 1), pubsub.Span(4, 5)}, // two name buckets
		{pubsub.Span(90, 110)},                 // price band
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var host pubsub.NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if g.Node(pubsub.NodeID(i)).Kind != 0 { // stub node
			host = pubsub.NodeID(i)
			break
		}
	}
	var subs []pubsub.Subscription
	for _, r := range rects {
		subs = append(subs, pubsub.Subscription{Owner: host, Rect: r})
	}
	w, err := pubsub.NewCustomWorld(g, []pubsub.Axis{
		{Lo: 0, Hi: 10, Cells: 10},
		{Lo: 0, Hi: 200, Cells: 20},
	}, subs)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumSubscribers() != 1 {
		t.Fatalf("NumSubscribers = %d", w.NumSubscribers())
	}
	// The default event source works and stays in bounds.
	evs := w.Events(20, 96)
	if len(evs) != 20 {
		t.Fatal("custom world events failed")
	}
}

func TestFacadePersistenceRoundTrip(t *testing.T) {
	g, err := pubsub.GenerateTopology(pubsub.Net100)
	if err != nil {
		t.Fatal(err)
	}
	var topo strings.Builder
	if err := pubsub.WriteTopology(&topo, g); err != nil {
		t.Fatal(err)
	}
	g2, err := pubsub.ReadTopology(strings.NewReader(topo.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() {
		t.Fatal("topology round trip changed size")
	}

	w, err := pubsub.NewStockWorld(g2, pubsub.StockConfig{NumSubscriptions: 100, PubModes: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var subs strings.Builder
	if err := pubsub.WriteSubscriptions(&subs, w.Subs); err != nil {
		t.Fatal(err)
	}
	loaded, err := pubsub.ReadSubscriptions(strings.NewReader(subs.String()))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := pubsub.NewCustomWorld(g2, w.Axes, loaded)
	if err != nil {
		t.Fatal(err)
	}

	evs := w.Events(100, 6)
	var trace strings.Builder
	if err := pubsub.WriteEvents(&trace, evs); err != nil {
		t.Fatal(err)
	}
	evs2, err := pubsub.ReadEvents(strings.NewReader(trace.String()))
	if err != nil {
		t.Fatal(err)
	}

	// The fully round-tripped world drives an engine end to end.
	engine, err := pubsub.NewEngineFromWorld(w2, evs2, pubsub.EngineConfig{
		Groups: 10, CellBudget: 200, DynamicMethod: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs2[:30] {
		if _, _, err := engine.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}

	var dot strings.Builder
	if err := pubsub.WriteTopologyDOT(&dot, g2); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dot.String(), "graph topology {") {
		t.Error("DOT output malformed")
	}
}
