// Benchmarks regenerating every table and figure of the paper, plus
// microbenchmarks of the pipeline stages. Each experiment benchmark runs a
// scaled-down but structurally identical version of the corresponding
// pubsub-bench experiment; run the CLI for full-size reproductions.
//
//	go test -bench=. -benchmem
package pubsub_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/noloss"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"

	pubsub "repro"
)

// benchEnv caches one scaled-down §5.1 environment across benchmarks.
var benchEnv *experiments.StockEnv

func getEnv(b *testing.B) *experiments.StockEnv {
	b.Helper()
	if benchEnv == nil {
		env, err := experiments.NewStockEnv(experiments.StockEnvConfig{
			NumSubs:     600,
			PubModes:    1,
			TrainEvents: 1200,
			EvalEvents:  250,
			Seed:        1,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchEnv = env
	}
	return benchEnv
}

func benchSpecs() []experiments.AlgorithmSpec {
	return []experiments.AlgorithmSpec{
		{Alg: &cluster.KMeans{Variant: cluster.MacQueen}, Budget: 1200},
		{Alg: &cluster.KMeans{Variant: cluster.Forgy}, Budget: 1200},
		{Alg: cluster.MST{}, Budget: 1200},
		{Alg: &cluster.Pairwise{Approx: true}, Budget: 800},
	}
}

// BenchmarkTable1 regenerates Table 1 (regionalism 0.4) on its three
// smallest rows.
func BenchmarkTable1(b *testing.B) {
	rows := []experiments.TableRowSpec{
		{Net: topology.Net100, Subs: 1000, Dist: workload.Uniform},
		{Net: topology.Net100, Subs: 1000, Dist: workload.Gaussian},
		{Net: topology.Net100, Subs: 80, Dist: workload.Uniform},
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable(experiments.TableConfig{
			Regionalism: 0.4, Rows: rows, Events: 100, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (no regionalism) on its three
// smallest rows.
func BenchmarkTable2(b *testing.B) {
	rows := []experiments.TableRowSpec{
		{Net: topology.Net100, Subs: 1000, Dist: workload.Uniform},
		{Net: topology.Net100, Subs: 1000, Dist: workload.Gaussian},
		{Net: topology.Net100, Subs: 80, Dist: workload.Uniform},
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable(experiments.TableConfig{
			Regionalism: 0, Rows: rows, Events: 100, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaseline52 regenerates the §5.2 absolute baseline measurement.
func BenchmarkBaseline52(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.MeasureBaselines(env.Model, env.World, env.Matcher, env.Eval); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates a reduced Figure 7 sweep (3 group counts, all
// algorithm families).
func BenchmarkFig7(b *testing.B) {
	env := getEnv(b)
	nl := noloss.Config{PoolSize: 800, Iterations: 3, Seeds: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(env, []int{10, 50, 100}, benchSpecs(), nl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates a reduced Figure 8 sweep (No-Loss parameters).
func BenchmarkFig8(b *testing.B) {
	env := getEnv(b)
	cfg := experiments.Fig8Config{
		PoolSizes:  []int{400, 1200},
		Iterations: []int{2, 6},
		FixedPool:  800,
		FixedIters: 3,
		K:          80,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(env, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates a reduced Figure 9 (two networks, one
// algorithm).
func BenchmarkFig9(b *testing.B) {
	base := experiments.StockEnvConfig{
		NumSubs: 400, TrainEvents: 800, EvalEvents: 150,
	}
	specs := []experiments.AlgorithmSpec{
		{Alg: &cluster.KMeans{Variant: cluster.Forgy}, Budget: 800},
	}
	nl := noloss.Config{PoolSize: 600, Iterations: 2, Seeds: 24}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig9(base, [2]int64{1, 2}, []int{20, 80}, specs, nl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 regenerates a reduced Figures 10/11 sweep (quality and
// time vs cell budget).
func BenchmarkFig10(b *testing.B) {
	env := getEnv(b)
	cfg := experiments.Fig10Config{Budgets: []int{300, 1000}, K: 60}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig10(env, benchSpecs(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- pipeline stage microbenchmarks ---

// BenchmarkTopologyGenerate measures transit–stub generation of the §5.1
// network.
func BenchmarkTopologyGenerate(b *testing.B) {
	cfg := topology.Eval600
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := topology.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildInput measures subscription rasterisation and hyper-cell
// coalescing.
func BenchmarkBuildInput(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.BuildInput(env.World, env.Grid, env.Train, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterAlgorithms measures each clustering algorithm in
// isolation at K=50.
func BenchmarkClusterAlgorithms(b *testing.B) {
	env := getEnv(b)
	in, err := cluster.BuildInput(env.World, env.Grid, env.Train, 1000)
	if err != nil {
		b.Fatal(err)
	}
	algs := []cluster.Algorithm{
		&cluster.KMeans{Variant: cluster.MacQueen},
		&cluster.KMeans{Variant: cluster.Forgy},
		cluster.MST{},
		&cluster.Pairwise{},
		&cluster.Pairwise{Approx: true},
	}
	for _, alg := range algs {
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.Cluster(in, 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNoLossBuild measures the No-Loss intersection refinement.
func BenchmarkNoLossBuild(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := noloss.Build(env.World, env.Train, noloss.Config{
			PoolSize: 1000, Iterations: 4, Seeds: 32,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePublish measures the full per-event path: match, route,
// cost.
func BenchmarkEnginePublish(b *testing.B) {
	env := getEnv(b)
	engine, err := pubsub.NewEngineFromWorld(env.World, env.Train, pubsub.EngineConfig{
		Groups: 50, CellBudget: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	evs := env.Eval
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := engine.Publish(evs[i%len(evs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineWarmRefresh measures the dynamic re-clustering path.
func BenchmarkEngineWarmRefresh(b *testing.B) {
	env := getEnv(b)
	engine, err := pubsub.NewEngineFromWorld(env.World, env.Train, pubsub.EngineConfig{
		Groups:    50,
		Algorithm: &cluster.KMeans{Variant: cluster.MacQueen},

		CellBudget: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := engine.Refresh(2); err != nil {
			b.Fatal(err)
		}
	}
}
