GO ?= go

.PHONY: all build test tier1 race chaos chaos-recovery chaos-wire chaos-replicate chaos-federate bench bench-json bench-baseline bench-decide bench-decide-n bench-recovery bench-wire bench-replicate bench-federate bench-smoke bench-1m bench-1m-smoke alloc-regression vet staticcheck fmt

# Label recorded next to a bench-baseline entry in BENCH_cluster.json.
BENCH_LABEL ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo local)

all: build tier1

build:
	$(GO) build ./...

# tier1 is the CI gate: vet, staticcheck (when installed), the
# zero-allocation regressions and the race-enabled short suite (the heavy
# chaos scenario is skipped under -short so this stays fast).
tier1: vet staticcheck alloc-regression
	$(GO) test -race -short ./...

# alloc-regression pins the decide path and the small-frame read loop at
# zero allocations per operation via testing.AllocsPerRun. It must run
# without the race detector (shadow allocations would inflate the counts),
# which is why it is a separate tier1 prerequisite rather than part of the
# race suite.
alloc-regression:
	$(GO) test -count=1 -run 'TestDecidePathZeroAllocs|TestReadFrameZeroCopySmall' ./internal/broker/ ./internal/wire/

# staticcheck runs honnef.co/go/tools when the binary is on PATH and is a
# no-op otherwise, so tier1 never depends on tooling the container lacks.
# CI installs a pinned version, making the check mandatory there.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the full fault-injection and self-healing suite twice under
# the race detector, including the heavy recovery scenarios skipped by
# tier1's -short.
chaos:
	$(GO) test -race -count=2 ./internal/broker/ ./internal/faults/ ./internal/health/ ./internal/durable/

# chaos-recovery is the crash–restart subset: every durability and
# crash-matrix scenario, twice, under the race detector. CI runs it as
# its own job so a dedup/journal race is named by the job that fails.
chaos-recovery:
	$(GO) test -race -count=2 -run 'Durable|CrashRestart' ./internal/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-json writes the tier-1 benchmarks as machine-readable go-test JSON
# (one event per line) for trend tracking across commits.
bench-json:
	mkdir -p results
	$(GO) test -json -bench=. -benchmem -run=^$$ . > results/bench.json

# bench-baseline re-runs the clustering perf-trajectory benchmarks
# (n=1200 hyper-cells, 6000 subscribers) with -count=3 and appends a
# labelled entry to BENCH_cluster.json, with speedups computed against
# the file's first (pre-optimisation) entry. Override the label with
# BENCH_LABEL=mylabel.
bench-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkPairwiseExact$$|BenchmarkForgy$$|BenchmarkMacQueen$$|BenchmarkMSTCluster$$|BenchmarkPairwiseApprox$$' \
		-benchmem -count=3 ./internal/cluster/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_cluster.json -label "$(BENCH_LABEL)"

# bench-decide measures the snapshot decision plane's publish→decide
# throughput at 1, 2 and 4 workers and appends a labelled entry to
# BENCH_cluster.json. Worker scaling only shows on multi-core hosts;
# the recorded GOMAXPROCS qualifies each entry.
bench-decide:
	$(GO) test -run '^$$' -bench 'BenchmarkPublishDecide$$' -benchmem -count=3 ./internal/broker/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_cluster.json -label "$(BENCH_LABEL)-decide"

# bench-recovery measures the durability layer — journal append throughput
# (buffered and per-record fsync) and cold-recovery time over a
# 10k-subscription checkpoint plus a 1k-record journal tail — and appends
# a labelled entry to BENCH_cluster.json.
bench-recovery:
	$(GO) test -run '^$$' -bench 'BenchmarkJournalAppend|BenchmarkColdRecovery' -benchmem -count=3 ./internal/durable/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_cluster.json -label "$(BENCH_LABEL)-recovery"

# bench-wire measures loopback publish→deliver throughput over the TCP
# wire transport next to the identical pipeline in-process (framing, CRCs,
# credit accounting and coalesced flushes vs a direct observer call) and
# appends a labelled entry to BENCH_cluster.json — the wire-overhead row.
bench-wire:
	$(GO) test -run '^$$' -bench 'PublishDeliver' -benchmem -count=3 ./internal/transport/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_cluster.json -label "$(BENCH_LABEL)-wire"

# bench-decide-n re-runs the decision-plane benchmarks under an explicit
# GOMAXPROCS=$(MP) override (default 4) and records them as a separate
# row. On hosts with fewer cores the override oversubscribes the CPU; the
# entry's gomaxprocs field qualifies the numbers.
MP ?= 4
bench-decide-n:
	export GOMAXPROCS=$(MP); $(GO) test -run '^$$' -bench 'BenchmarkPublishDecide$$' -benchmem -count=3 ./internal/broker/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_cluster.json -label "$(BENCH_LABEL)-decide-p$(MP)"

# chaos-wire runs the transport suite — loopback e2e, credit exhaustion,
# graceful drain, protocol edges, and the conn-fault chaos scenario with
# forced reconnects — twice under the race detector.
chaos-wire:
	$(GO) test -race -count=2 ./internal/transport/ ./internal/wire/ ./internal/faults/

# chaos-replicate runs the replicated-pair suite — journal shipping,
# catch-up, fencing, and the failover chaos matrix (crashes mid-ship,
# mid-catch-up, mid-failover) proving exactly-once across the handover —
# twice under the race detector.
chaos-replicate:
	$(GO) test -race -count=2 ./internal/replicate/

# chaos-federate runs the federation suite — partition derivation, the
# cross-shard exactly-once router tests (boundary straddlers, overlap
# dedup, fenced-leader rerouting, remote shards over the wire) and the
# chaos matrix where a replicated shard pair fails over mid-fan-out under
# concurrent churn — twice under the race detector.
chaos-federate:
	$(GO) test -race -count=2 ./internal/federate/

# bench-federate measures end-to-end publish→deliver latency (p50/p99)
# through the federation router at 1 shard vs 4 shards and appends a
# labelled entry to BENCH_cluster.json — the fan-out/merge overhead row.
bench-federate:
	$(GO) test -run '^$$' -bench 'BenchmarkFederatePublishDeliver' -count=3 ./internal/federate/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_cluster.json -label "$(BENCH_LABEL)-federate"

# bench-replicate measures the replicated publish barrier (dual-fsync
# p50/p99 lag) and the full failover time (kill → detection → promotion →
# first delivery) and appends a labelled entry to BENCH_cluster.json.
bench-replicate:
	$(GO) test -run '^$$' -bench 'ReplicationLag|Failover' -count=3 ./internal/replicate/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_cluster.json -label "$(BENCH_LABEL)-replicate"

# bench-1m measures the decide plane at 1,048,576 subscribers (one per
# stub node of an 8×32×64×64 transit–stub network) across 1, 2 and 4
# decide workers, and appends a labelled entry to BENCH_cluster.json.
# Setup (topology, R*-tree, clustering) takes about a minute and is cached
# across worker counts and -count repetitions; the explicit -timeout keeps
# a wedged run from eating the default 10-minute budget silently.
bench-1m:
	$(GO) test -run '^$$' -bench 'BenchmarkPublishDecide1M' -benchmem -count=2 -benchtime=2000x -timeout 30m ./internal/broker/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_cluster.json -label "$(BENCH_LABEL)-1m"

# bench-1m-smoke is the CI-scale run: -short drops the world to 65,536
# subscribers, proving the million-subscriber path builds and decides
# without paying the full setup.
bench-1m-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPublishDecide1M' -short -benchmem -benchtime=200x -timeout 10m ./internal/broker/

# bench-smoke compiles and runs every benchmark in the repo exactly once —
# a cheap CI guard that benchmarks keep building and don't panic. -short
# keeps scale-aware benchmarks (the 1M decide world) at their reduced size.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x -short ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .
