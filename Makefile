GO ?= go

.PHONY: all build test tier1 race chaos bench bench-json vet fmt

all: build tier1

build:
	$(GO) build ./...

# tier1 is the CI gate: vet plus the race-enabled short suite (the heavy
# chaos scenario is skipped under -short so this stays fast).
tier1: vet
	$(GO) test -race -short ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the full fault-injection suite, including the heavy scenario.
chaos:
	$(GO) test -race ./internal/broker/ ./internal/faults/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-json writes the tier-1 benchmarks as machine-readable go-test JSON
# (one event per line) for trend tracking across commits.
bench-json:
	mkdir -p results
	$(GO) test -json -bench=. -benchmem -run=^$$ . > results/bench.json

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .
