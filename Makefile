GO ?= go

.PHONY: all build test tier1 race chaos bench bench-json vet staticcheck fmt

all: build tier1

build:
	$(GO) build ./...

# tier1 is the CI gate: vet, staticcheck (when installed) and the
# race-enabled short suite (the heavy chaos scenario is skipped under
# -short so this stays fast).
tier1: vet staticcheck
	$(GO) test -race -short ./...

# staticcheck runs honnef.co/go/tools when the binary is on PATH and is a
# no-op otherwise, so tier1 never depends on tooling the container lacks.
# CI installs a pinned version, making the check mandatory there.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the full fault-injection and self-healing suite twice under
# the race detector, including the heavy recovery scenarios skipped by
# tier1's -short.
chaos:
	$(GO) test -race -count=2 ./internal/broker/ ./internal/faults/ ./internal/health/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-json writes the tier-1 benchmarks as machine-readable go-test JSON
# (one event per line) for trend tracking across commits.
bench-json:
	mkdir -p results
	$(GO) test -json -bench=. -benchmem -run=^$$ . > results/bench.json

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .
