// Quickstart: build a network, generate a stock-ticker workload, precompute
// multicast groups with Forgy K-means, and publish a handful of events.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pubsub "repro"
)

func main() {
	// A small transit–stub network: 1 transit block of 4 routers, each
	// sponsoring 3 stub networks of 8 nodes (the paper's "100 node"
	// configuration).
	g, err := pubsub.GenerateTopology(pubsub.TopologyConfig{
		TransitBlocks:   1,
		TransitPerBlock: 4,
		StubsPerTransit: 3,
		NodesPerStub:    8,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 200 stock subscriptions: {bst, name, quote, volume} rectangles placed
	// over the network with Zipf-like concentration.
	w, err := pubsub.NewStockWorld(g, pubsub.StockConfig{
		NumSubscriptions: 200,
		PubModes:         1,
		Seed:             8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Train publication probabilities on a sample stream, then build the
	// engine: K = 20 multicast groups, Forgy K-means over the top 500
	// hyper-cells.
	train := w.Events(1000, 9)
	engine, err := pubsub.NewEngineFromWorld(w, train, pubsub.EngineConfig{
		Groups:     20,
		Algorithm:  &pubsub.KMeans{Variant: pubsub.Forgy},
		CellBudget: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine ready: %d subscriptions, %d multicast groups\n\n",
		engine.NumSubscriptions(), engine.NumGroups())

	// Publish ten events and show the delivery decision for each.
	for i, ev := range w.Events(10, 10) {
		d, costs, err := engine.Publish(ev)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case d.Group >= 0:
			fmt.Printf("event %d from node %d: multicast to group %d (%d interested nodes), cost %.1f\n",
				i, ev.Pub, d.Group, len(d.Interested), costs.Network)
		case len(d.Interested) > 0:
			fmt.Printf("event %d from node %d: unicast to %d interested nodes, cost %.1f\n",
				i, ev.Pub, len(d.Interested), costs.Network)
		default:
			fmt.Printf("event %d from node %d: no interested subscribers\n", i, ev.Pub)
		}
	}

	// Subscriptions can change at run time; the engine re-balances its
	// groups with a few warm K-means passes instead of re-clustering from
	// scratch.
	sub := pubsub.Subscription{
		Owner: w.SubscriberNodes[0],
		Rect: pubsub.Rect{
			pubsub.Span(-0.5, 0.5), // bst = buy
			pubsub.Span(8, 12),     // a band of names
			pubsub.RightOf(9),      // quote > 9
			pubsub.FullInterval(),  // any volume
		},
	}
	if _, err := engine.AddSubscription(sub); err != nil {
		log.Fatal(err)
	}
	if err := engine.Refresh(2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter adding a subscription and a warm refresh: %d subscriptions, %d groups\n",
		engine.NumSubscriptions(), engine.NumGroups())
}
