// Almoverlay contrasts the paper's two multicast frameworks on the same
// precomputed groups: network-supported dense-mode multicast (routers
// forward along the publisher's shortest-path tree) versus application-
// level multicast (group members forward to each other along an overlay
// MST built in the unicast metric closure). It prints the per-group
// overlay structure and the average per-event cost of both frameworks as
// the group count grows.
//
// Run with:
//
//	go run ./examples/almoverlay
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	pubsub "repro"
)

func main() {
	g, err := pubsub.GenerateTopology(pubsub.Eval600)
	if err != nil {
		log.Fatal(err)
	}
	w, err := pubsub.NewStockWorld(g, pubsub.StockConfig{
		NumSubscriptions: 600,
		PubModes:         4, // four publication hot spots
		Seed:             21,
	})
	if err != nil {
		log.Fatal(err)
	}
	train := w.Events(1500, 22)
	eval := w.Events(300, 23)

	// Show the overlay structure for a small engine first.
	engine, err := pubsub.NewEngineFromWorld(w, train, pubsub.EngineConfig{
		Groups:     8,
		Algorithm:  &pubsub.KMeans{Variant: pubsub.Forgy},
		CellBudget: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("overlay MSTs for 8 groups (application-level multicast):")
	for gi := 0; gi < engine.NumGroups(); gi++ {
		info := engine.Group(gi)
		fmt.Printf("  group %d: %3d members, overlay tree cost %7.1f\n",
			info.Index, len(info.Nodes), info.OverlayCost)
	}

	// Then sweep K and compare frameworks.
	fmt.Println("\ncost per event vs number of groups:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "K\tnetwork multicast\tapp-level multicast\tALM overhead")
	for _, k := range []int{10, 25, 50, 100} {
		e, err := pubsub.NewEngineFromWorld(w, train, pubsub.EngineConfig{
			Groups:     k,
			Algorithm:  &pubsub.KMeans{Variant: pubsub.Forgy},
			CellBudget: 2000,
		})
		if err != nil {
			log.Fatal(err)
		}
		var net, alm float64
		for _, ev := range eval {
			_, c, err := e.Publish(ev)
			if err != nil {
				log.Fatal(err)
			}
			net += c.Network
			alm += c.AppLevel
		}
		net /= float64(len(eval))
		alm /= float64(len(eval))
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%+.1f%%\n", k, net, alm, (alm/net-1)*100)
	}
	tw.Flush()
	fmt.Println("\nApp-level multicast needs no router support but pays unicast costs")
	fmt.Println("between overlay hops — slightly more expensive, same algorithm ordering.")
}
