// Regional reproduces the paper's §3 motivating study in miniature: on the
// same network, how do unicast, broadcast and ideal multicast compare as
// the number of subscriptions shrinks and as subscriber interest becomes
// regional? The gap between broadcast and ideal multicast is the headroom
// that subscription clustering exploits.
//
// Run with:
//
//	go run ./examples/regional
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	pubsub "repro"
)

func main() {
	g, err := pubsub.GenerateTopology(pubsub.TopologyConfig{
		TransitBlocks:   1,
		TransitPerBlock: 4,
		StubsPerTransit: 3,
		NodesPerStub:    8, // the paper's 100-node network
		Seed:            11,
	})
	if err != nil {
		log.Fatal(err)
	}
	model := pubsub.NewCostModel(g)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "regionalism\tsubs\tdist'n\tunicast\tbroadcast\tideal\tbroadcast/ideal")
	for _, degree := range []float64{0.4, 0.0} {
		for _, subs := range []int{2000, 500, 80} {
			for _, dist := range []pubsub.PrefDist{pubsub.Uniform, pubsub.Gaussian} {
				u, b, ideal := measure(model, g, degree, subs, dist)
				fmt.Fprintf(tw, "%.1f\t%d\t%s\t%.0f\t%.0f\t%.0f\t%.1fx\n",
					degree, subs, dist, u, b, ideal, b/ideal)
			}
		}
	}
	tw.Flush()
	fmt.Println("\nObservations (the paper's §3 argument):")
	fmt.Println(" - with many subscriptions, broadcast ≈ ideal: flooding is fine;")
	fmt.Println(" - with few subscriptions the broadcast/ideal gap opens — multicast groups pay off;")
	fmt.Println(" - regional interest (0.4) shrinks every cost: interested nodes cluster in the topology.")
}

func measure(model *pubsub.CostModel, g *pubsub.Graph, degree float64, subs int, dist pubsub.PrefDist) (unicast, broadcast, ideal float64) {
	w, err := pubsub.NewRegionalWorld(g, pubsub.RegionalConfig{
		NumSubscriptions: subs,
		Regionalism:      degree,
		Dist:             dist,
		Seed:             int64(subs)*7 + int64(dist),
	})
	if err != nil {
		log.Fatal(err)
	}
	events := w.Events(200, 99)
	// Match by brute force: subscription counts here are small.
	for _, ev := range events {
		seen := map[pubsub.NodeID]bool{}
		var nodes []pubsub.NodeID
		for _, s := range w.Subs {
			if s.Rect.Contains(ev.Point) {
				unicast += model.Dist(ev.Pub, s.Owner)
				if !seen[s.Owner] {
					seen[s.Owner] = true
					nodes = append(nodes, s.Owner)
				}
			}
		}
		broadcast += model.BroadcastCost(ev.Pub)
		ideal += model.SPTCoverCost(ev.Pub, nodes)
	}
	n := float64(len(events))
	return unicast / n, broadcast / n, ideal / n
}
