// Stockticker compares every clustering algorithm of the paper on the
// §5.1 stock-market workload: 1000 {bst, name, quote, volume} subscriptions
// over a 600-node network, publications from a gaussian mixture, and K = 50
// multicast groups. It prints the per-event delivery cost and improvement
// over unicast for each algorithm — a one-screen miniature of Figure 7.
//
// Run with:
//
//	go run ./examples/stockticker
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	pubsub "repro"
)

func main() {
	g, err := pubsub.GenerateTopology(pubsub.Eval600)
	if err != nil {
		log.Fatal(err)
	}
	w, err := pubsub.NewStockWorld(g, pubsub.StockConfig{
		NumSubscriptions: 1000,
		BlockSplit:       []float64{0.4, 0.3, 0.3},
		NameMeans:        []float64{3, 10, 17},
		PubModes:         1,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}
	train := w.Events(2000, 2)
	eval := w.Events(300, 3)

	// Baselines for normalisation.
	model := pubsub.NewCostModel(g)
	base, err := measureBaselines(model, w, eval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d subscriptions on %d nodes; per-event baselines: unicast %.0f, broadcast %.0f, ideal %.0f\n\n",
		len(w.Subs), g.NumNodes(), base.unicast, base.broadcast, base.ideal)

	const K = 50
	strategies := []struct {
		name string
		cfg  pubsub.EngineConfig
	}{
		{"k-means", pubsub.EngineConfig{Groups: K, Algorithm: &pubsub.KMeans{Variant: pubsub.MacQueen}, CellBudget: 3000}},
		{"forgy", pubsub.EngineConfig{Groups: K, Algorithm: &pubsub.KMeans{Variant: pubsub.Forgy}, CellBudget: 3000}},
		{"mst", pubsub.EngineConfig{Groups: K, Algorithm: pubsub.MST{}, CellBudget: 3000}},
		{"approx-pairs", pubsub.EngineConfig{Groups: K, Algorithm: &pubsub.Pairwise{Approx: true}, CellBudget: 1500}},
		{"no-loss", pubsub.EngineConfig{Groups: K, NoLoss: &pubsub.NoLossConfig{PoolSize: 3000, Iterations: 6}}},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tbuild time\tnetwork cost\timprovement\tapp-level cost\timprovement")
	for _, s := range strategies {
		start := time.Now()
		engine, err := pubsub.NewEngineFromWorld(w, train, s.cfg)
		if err != nil {
			log.Fatal(err)
		}
		build := time.Since(start)
		var net, alm float64
		for _, ev := range eval {
			_, c, err := engine.Publish(ev)
			if err != nil {
				log.Fatal(err)
			}
			net += c.Network
			alm += c.AppLevel
		}
		net /= float64(len(eval))
		alm /= float64(len(eval))
		fmt.Fprintf(tw, "%s\t%v\t%.0f\t%.1f%%\t%.0f\t%.1f%%\n",
			s.name, build.Round(time.Millisecond),
			net, base.improvement(net), alm, base.improvement(alm))
	}
	tw.Flush()
	fmt.Println("\n(100% = ideal multicast with one dedicated group per event; 0% = unicast)")
}

type baselines struct {
	unicast, broadcast, ideal float64
}

func (b baselines) improvement(cost float64) float64 {
	return (b.unicast - cost) / (b.unicast - b.ideal) * 100
}

// measureBaselines replays the events through the raw cost model.
func measureBaselines(model *pubsub.CostModel, w *pubsub.World, events []pubsub.Event) (baselines, error) {
	// Use a throwaway engine with K=1 as an exact matcher.
	engine, err := pubsub.NewEngineFromWorld(w, events, pubsub.EngineConfig{Groups: 1, CellBudget: 1})
	if err != nil {
		return baselines{}, err
	}
	var b baselines
	for _, ev := range events {
		d := engine.Decide(ev)
		for _, si := range d.MatchedSubs {
			b.unicast += model.Dist(ev.Pub, w.Subs[si].Owner)
		}
		b.broadcast += model.BroadcastCost(ev.Pub)
		b.ideal += model.SPTCoverCost(ev.Pub, d.Interested)
	}
	n := float64(len(events))
	b.unicast /= n
	b.broadcast /= n
	b.ideal /= n
	return b, nil
}
