// Broker runs the pub-sub system "for real": instead of pricing delivery
// paths, it spins up an in-process delivery fabric (one inbox goroutine per
// subscriber node, a decision stage, a fan-out worker pool) and pushes an
// event stream through it. It contrasts a grid-clustered engine — fast,
// but some multicast copies land on uninterested nodes — with a No-Loss
// engine, whose groups by construction never waste a single copy.
//
// Run with:
//
//	go run ./examples/broker
package main

import (
	"fmt"
	"log"

	pubsub "repro"
)

func main() {
	g, err := pubsub.GenerateTopology(pubsub.Eval600)
	if err != nil {
		log.Fatal(err)
	}
	w, err := pubsub.NewStockWorld(g, pubsub.StockConfig{
		NumSubscriptions: 800,
		PubModes:         1,
		Seed:             41,
	})
	if err != nil {
		log.Fatal(err)
	}
	train := w.Events(1500, 42)
	events := w.Events(1000, 43)

	configs := []struct {
		name string
		cfg  pubsub.EngineConfig
	}{
		{"forgy grid (K=50)", pubsub.EngineConfig{
			Groups: 50, Algorithm: &pubsub.KMeans{Variant: pubsub.Forgy}, CellBudget: 2000,
		}},
		{"no-loss (K=50)", pubsub.EngineConfig{
			Groups: 50, NoLoss: &pubsub.NoLossConfig{PoolSize: 2000, Iterations: 6},
		}},
	}

	for _, c := range configs {
		engine, err := pubsub.NewEngineFromWorld(w, train, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		b, err := pubsub.NewBroker(engine, pubsub.WithWorkers(4))
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range events {
			if err := b.Publish(ev); err != nil {
				log.Fatal(err)
			}
		}
		b.Close()
		st := b.Stats()

		wasteRate := 0.0
		if st.Deliveries > 0 {
			wasteRate = 100 * float64(st.Wasted) / float64(st.Deliveries)
		}
		fmt.Printf("%-20s published %d  (multicast %d / unicast %d)\n",
			c.name, st.Published, st.Multicast, st.Unicast)
		fmt.Printf("%-20s delivered %d copies, %d wasted (%.1f%%)\n",
			"", st.Deliveries, st.Wasted, wasteRate)

		// Busiest receiver.
		var topNode pubsub.NodeID
		var topCount int64
		for n, cnt := range st.PerNode {
			if cnt > topCount {
				topNode, topCount = n, cnt
			}
		}
		fmt.Printf("%-20s busiest node %d received %d copies\n\n", "", topNode, topCount)
	}
	fmt.Println("Grid clustering delivers many wasted end-point copies, yet its total")
	fmt.Println("link cost is far lower (multicast trees share edges — see the cost")
	fmt.Println("experiments); No-Loss guarantees zero waste but routes fewer events")
	fmt.Println("through groups, leaving more unicast work.")
}
