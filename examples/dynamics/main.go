// Dynamics demonstrates the subscription-churn story the paper recommends
// iterative clustering for (§6, item 5): subscribers join and leave while
// events keep flowing. Between refreshes the engine tops up multicast
// deliveries with unicast so no message is ever lost; a periodic warm
// refresh (a couple of K-means passes seeded by the previous partition)
// restores group quality at a fraction of a full re-clustering.
//
// Run with:
//
//	go run ./examples/dynamics
package main

import (
	"fmt"
	"log"
	"time"

	pubsub "repro"
)

func main() {
	g, err := pubsub.GenerateTopology(pubsub.Eval600)
	if err != nil {
		log.Fatal(err)
	}
	w, err := pubsub.NewStockWorld(g, pubsub.StockConfig{
		NumSubscriptions: 800,
		PubModes:         1,
		Seed:             31,
	})
	if err != nil {
		log.Fatal(err)
	}
	train := w.Events(1500, 32)
	engine, err := pubsub.NewEngineFromWorld(w, train, pubsub.EngineConfig{
		Groups:     40,
		Algorithm:  &pubsub.KMeans{Variant: pubsub.MacQueen},
		CellBudget: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A pool of future subscriptions to churn in (reuse generated rects
	// from a second workload so they follow the same interest model).
	w2, err := pubsub.NewStockWorld(g, pubsub.StockConfig{
		NumSubscriptions: 200,
		PubModes:         1,
		Seed:             33,
	})
	if err != nil {
		log.Fatal(err)
	}
	incoming := w2.Subs

	avgCost := func(evs []pubsub.Event) float64 {
		total := 0.0
		for _, ev := range evs {
			_, c, err := engine.Publish(ev)
			if err != nil {
				log.Fatal(err)
			}
			total += c.Network
		}
		return total / float64(len(evs))
	}

	fmt.Printf("%-30s subs=%d groups=%d stale=%v\n",
		"initial state:", engine.NumSubscriptions(), engine.NumGroups(), engine.Stale())
	evs := w.Events(200, 34)
	fmt.Printf("%-30s %.0f per event\n\n", "cost before churn:", avgCost(evs))

	// Churn: 5 epochs of 40 joins and 20 leaves each, warm-refreshing after
	// every epoch.
	next := 0
	for epoch := 1; epoch <= 5; epoch++ {
		for i := 0; i < 40 && next < len(incoming); i++ {
			if _, err := engine.AddSubscription(incoming[next]); err != nil {
				log.Fatal(err)
			}
			next++
		}
		for i := 0; i < 20; i++ {
			slot := (epoch*37 + i*13) % 800     // deterministic pseudo-random victims
			_ = engine.RemoveSubscription(slot) // may already be gone; fine
		}
		costStale := avgCost(evs)

		start := time.Now()
		if err := engine.Refresh(2); err != nil { // 2 warm passes
			log.Fatal(err)
		}
		warmTime := time.Since(start)
		costWarm := avgCost(evs)

		fmt.Printf("epoch %d: subs=%4d  stale cost=%4.0f  after warm refresh=%4.0f (%v)\n",
			epoch, engine.NumSubscriptions(), costStale, costWarm, warmTime.Round(time.Millisecond))
	}

	// Compare against a full cold rebuild at the end.
	start := time.Now()
	if err := engine.Refresh(0); err != nil { // 0 ⇒ rebuild from scratch
		log.Fatal(err)
	}
	coldTime := time.Since(start)
	fmt.Printf("\nfinal cold rebuild: cost=%.0f (%v)\n", avgCost(evs), coldTime.Round(time.Millisecond))
	fmt.Println("warm refreshes keep delivery cost close to a cold rebuild at lower latency.")
}
